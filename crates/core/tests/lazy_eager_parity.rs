//! Property test: lazy/eager parity. For randomly generated small
//! relations and operation pipelines, `Frame::...collect()` produces
//! exactly the relation the equivalent sequence of eager `RmaContext`
//! calls produces — under every backend and both sort policies. The
//! optimizer's rewrites (sort elimination, backend choice) must be
//! invisible in results.

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::{Backend, RmaContext, RmaOptions, SortPolicy};
use rma_relation::{Relation, RelationBuilder};

const ROWS: usize = 3;

/// One step of a random pipeline. Binary steps carry their (pre-generated)
/// second operand and its key attribute name.
#[derive(Debug, Clone)]
enum Step {
    Qqr,
    Inv,
    Tra,
    Add(Relation, String),
    Mmu(Relation, String),
}

/// A relation with a unique string key and `ROWS` float application
/// columns, in a shuffled physical row order.
fn keyed_relation(key_name: &str, prefix: &str, vals: &[f64], rng: &mut TestRng) -> Relation {
    let mut order: Vec<usize> = (0..ROWS).collect();
    for i in (1..ROWS).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let keys: Vec<String> = order.iter().map(|i| format!("{prefix}{i:02}")).collect();
    let mut b = RelationBuilder::new().column(key_name, keys);
    for c in 0..ROWS {
        let col: Vec<f64> = order.iter().map(|&i| vals[i * ROWS + c]).collect();
        b = b.column(format!("{prefix}a{c}"), col);
    }
    b.build().expect("valid relation")
}

/// Strategy: a base relation plus a pipeline of 1–3 steps that keeps the
/// intermediate application part square (so `inv` stays applicable).
fn arb_case() -> impl Strategy<Value = (Relation, Vec<Step>)> {
    (
        proptest::collection::vec(-4.0f64..4.0, ROWS * ROWS),
        proptest::collection::vec(
            (
                0usize..5,
                proptest::collection::vec(-4.0f64..4.0, ROWS * ROWS),
            ),
            1..4,
        ),
    )
        .prop_perturb(|(base_vals, raw_steps), mut rng| {
            let base = keyed_relation("k", "k", &base_vals, &mut rng);
            let mut steps = Vec::new();
            let mut order_len = 1usize; // current order-schema width
            for (i, (kind, vals)) in raw_steps.into_iter().enumerate() {
                let step = match kind {
                    0 => Step::Qqr,
                    1 => Step::Inv,
                    // tra needs a single-attribute order schema
                    2 if order_len == 1 => Step::Tra,
                    2 => Step::Qqr,
                    3 => {
                        let key = format!("j{i}");
                        let s = keyed_relation(&key, &format!("s{i}"), &vals, &mut rng);
                        order_len += 1;
                        Step::Add(s, key)
                    }
                    _ => {
                        let key = format!("m{i}");
                        let s = keyed_relation(&key, &format!("t{i}"), &vals, &mut rng);
                        Step::Mmu(s, key)
                    }
                };
                if matches!(step, Step::Tra) {
                    order_len = 1;
                }
                steps.push(step);
            }
            (base, steps)
        })
}

/// Apply the pipeline eagerly, tracking the order schema like the lazy
/// builder's caller would.
fn run_eager(
    ctx: &RmaContext,
    base: &Relation,
    steps: &[Step],
) -> Result<Relation, rma_core::RmaError> {
    let mut cur = base.clone();
    let mut order: Vec<String> = vec!["k".to_string()];
    for step in steps {
        let refs: Vec<&str> = order.iter().map(String::as_str).collect();
        cur = match step {
            Step::Qqr => ctx.qqr(&cur, &refs)?,
            Step::Inv => ctx.inv(&cur, &refs)?,
            Step::Tra => {
                let out = ctx.tra(&cur, &refs)?;
                order = vec!["C".to_string()];
                out
            }
            Step::Add(s, key) => {
                let out = ctx.add(&cur, &refs, s, &[key])?;
                order.push(key.clone());
                out
            }
            Step::Mmu(s, key) => ctx.mmu(&cur, &refs, s, &[key])?,
        };
    }
    Ok(cur)
}

/// Build the same pipeline lazily.
fn build_lazy(base: &Relation, steps: &[Step]) -> Frame {
    let mut frame = Frame::scan(base.clone());
    let mut order: Vec<String> = vec!["k".to_string()];
    for step in steps {
        let refs: Vec<&str> = order.iter().map(String::as_str).collect();
        frame = match step {
            Step::Qqr => frame.qqr(&refs),
            Step::Inv => frame.inv(&refs),
            Step::Tra => {
                let out = frame.tra(&refs);
                order = vec!["C".to_string()];
                out
            }
            Step::Add(s, key) => {
                let out = frame.add(&refs, Frame::scan(s.clone()), &[key]);
                order.push(key.clone());
                out
            }
            Step::Mmu(s, key) => frame.mmu(&refs, Frame::scan(s.clone()), &[key]),
        };
    }
    frame
}

fn configs() -> Vec<RmaOptions> {
    let mut out = Vec::new();
    for backend in [Backend::Auto, Backend::Bat, Backend::Dense] {
        for sort_policy in [SortPolicy::Optimized, SortPolicy::Always] {
            out.push(RmaOptions {
                backend,
                sort_policy,
                ..RmaOptions::default()
            });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lazy_collect_equals_eager_calls((base, steps) in arb_case()) {
        for options in configs() {
            let eager_ctx = RmaContext::new(options.clone());
            let lazy_ctx = RmaContext::new(options.clone());
            let eager = run_eager(&eager_ctx, &base, &steps);
            let lazy = build_lazy(&base, &steps).collect(&lazy_ctx);
            match (&eager, &lazy) {
                (Ok(e), Ok(l)) => {
                    prop_assert_eq!(
                        e.schema(), l.schema(),
                        "schema mismatch under {:?} for {:?}", options, steps
                    );
                    prop_assert_eq!(
                        e, l,
                        "result mismatch under {:?} for {:?}", options, steps
                    );
                }
                (Err(_), Err(_)) => {} // both reject (e.g. singular inv)
                (e, l) => prop_assert!(
                    false,
                    "divergence under {:?} for {:?}: eager={:?} lazy={:?}",
                    options, steps, e.is_ok(), l.is_ok()
                ),
            }
            // the optimizer may only ever *remove* sorts
            prop_assert!(
                lazy_ctx.stats().sorts <= eager_ctx.stats().sorts,
                "lazy sorted more than eager under {:?} for {:?}",
                options, steps
            );
        }
    }
}
