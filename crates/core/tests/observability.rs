//! Observability integration tests (PR 7): per-session [`ExecStats`]
//! attribution under concurrent sessions, and `EXPLAIN ANALYZE` output
//! stability across worker-thread counts.

use rma_core::plan::Frame;
use rma_core::serve::Server;
use rma_core::{RmaContext, RmaOptions};
use rma_relation::{Expr, Relation, RelationBuilder};

fn matrix_table() -> Relation {
    RelationBuilder::new()
        .column("k", vec!["a", "b"])
        .column("v1", vec![2.0f64, 0.0])
        .column("v2", vec![0.0f64, 2.0])
        .build()
        .unwrap()
}

/// Each concurrent session's `ExecStats` count exactly the matrix
/// operations that session issued — no bleed between sessions sharing one
/// server (and one worker pool), and none into the server's base context.
#[test]
fn exec_stats_attribute_to_the_issuing_session_under_concurrency() {
    let server = Server::default();
    let admin = server.session();
    admin.create_table("m", matrix_table()).unwrap();

    let sessions: Vec<_> = (0..4).map(|_| server.session()).collect();
    std::thread::scope(|scope| {
        for (k, session) in sessions.iter().enumerate() {
            scope.spawn(move || {
                for _ in 0..=k {
                    session
                        .query(Frame::table("m").rma_unary(rma_core::RmaOp::Inv, &["k"]))
                        .unwrap();
                }
            });
        }
    });
    for (k, session) in sessions.iter().enumerate() {
        assert_eq!(
            session.stats().ops_run,
            (k + 1) as u32,
            "session {k} miscounted its matrix ops"
        );
    }
    assert_eq!(admin.stats().ops_run, 0);
    assert_eq!(server.context().stats().ops_run, 0);

    // the registry saw every query too (4 sessions: 1+2+3+4 queries)
    let snap = server.metrics_snapshot();
    assert_eq!(snap.queries, 10);
}

fn three_way_join_frame(n: i64) -> (Relation, Relation, Relation) {
    let build = |key: &str, val: &str| {
        RelationBuilder::new()
            .column(key, (0..n).collect::<Vec<_>>())
            .column(val, (0..n).map(|i| i % 9).collect::<Vec<_>>())
            .build()
            .unwrap()
    };
    (build("k", "x"), build("k2", "y"), build("k3", "z"))
}

fn analyzed(threads: usize) -> String {
    let ctx = RmaContext::new(RmaOptions {
        threads,
        ..RmaOptions::default()
    });
    let (a, b, c) = three_way_join_frame(3000);
    Frame::scan(a)
        .select(Expr::col("x").lt(Expr::lit(5i64)))
        .join(Frame::scan(b), &[("k", "k2")])
        .join(Frame::scan(c), &[("k2", "k3")])
        .order_by(&["k"], &[true])
        .explain_analyze(&ctx)
        .unwrap()
}

/// Strip the run-dependent fields — wall time always varies, and morsel
/// counts legitimately differ with the worker-thread count — leaving the
/// tree shape, estimates, actual row counts, and q-errors.
fn normalize(text: &str) -> String {
    text.lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| {
                    if tok.starts_with("time=") {
                        "time=*"
                    } else if tok.starts_with("morsels=") {
                        "morsels=*"
                    } else {
                        tok
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// EXPLAIN ANALYZE renders the identical tree — same nodes, same actual
/// rows, same q-errors — at 1 and 4 worker threads: analyzed runs execute
/// operator-at-a-time (pipeline fusion off) precisely so profiles are
/// comparable across configurations.
#[test]
fn explain_analyze_is_stable_across_thread_counts() {
    let serial = analyzed(1);
    let parallel = analyzed(4);
    assert_eq!(
        normalize(&serial),
        normalize(&parallel),
        "EXPLAIN ANALYZE diverged between 1 and 4 threads:\n--- 1 thread\n{serial}\n--- 4 threads\n{parallel}"
    );
    // every node line carries the analyze columns
    for line in serial.lines() {
        assert!(line.contains("actual="), "missing actuals: {line}");
        assert!(line.contains("time="), "missing time: {line}");
        assert!(line.contains("morsels="), "missing morsels: {line}");
        assert!(line.contains("q_err="), "missing q-error: {line}");
    }
    // the 3-way join tree is all there
    assert_eq!(serial.matches("JoinOn").count(), 2, "{serial}");
    // the scan of `a` feeds 3000 rows into the filter, which keeps x<5
    assert!(serial.contains("actual=3000"), "{serial}");
}
