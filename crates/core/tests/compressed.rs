//! Compressed-execution tests (PR 10): encoded storage is an execution
//! detail, never a semantic one. For randomly generated encodable
//! relations — with and without nulls — every plan shape must produce the
//! same rows whether it scans the plain or the encoded form, across the
//! Auto/Bat/Dense backends and worker-thread counts {1, 2, 4}. On top of
//! the parity property, the encoded fast paths are pinned down exactly:
//! a dictionary-predicate filter and an RLE aggregate must finish with
//! **zero** forced `decode()` sinks, observable through
//! [`rma_storage::decode_sink_events`], and the serving layer must report
//! per-column encodings in `EXPLAIN` and the storage footprint in its
//! metrics JSON.
//!
//! Float columns hold small integer values so sums are exact under any
//! association, making parallel/serial and encoded/plain aggregates
//! bitwise-comparable.

use std::sync::Mutex;

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::serve::Server;
use rma_core::{Backend, RmaContext, RmaOptions};
use rma_relation::{AggFunc, AggSpec, Expr, Relation, RelationBuilder};
use rma_storage::{decode_sink_events, Bitmap, Column, ColumnData, Encoding};

/// `decode_sink_events()` is a process-global counter; every test in this
/// binary serializes on this lock so one test's sinks never bleed into
/// another's before/after delta.
static SINK_COUNTER: Mutex<()> = Mutex::new(());

fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
    SINK_COUNTER.lock().unwrap_or_else(|e| e.into_inner())
}

const REGIONS: [&str; 4] = ["west", "east", "north", "south"];

/// An encodable relation: clustered low-cardinality strings (dictionary),
/// long integer runs (RLE), a narrow value range (bit-packing), blocked
/// integer-valued floats (RLE), and a shuffled distinct key `k` that stays
/// plain and makes ORDER BY deterministic. `null_every > 0` NULLs every
/// n-th row of the `status` column (the bitmap rides along into the
/// encoded form untouched).
fn gen_rel(rows: usize, null_every: usize, rng: &mut TestRng) -> Relation {
    let mut keys: Vec<i64> = (0..rows as i64).collect();
    for i in (1..rows).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    let status_vals: Vec<i64> = (0..rows as i64).map(|i| (i / 128) % 5).collect();
    let status = if null_every > 0 {
        let nulls: Vec<bool> = (0..rows).map(|i| i % null_every == 0).collect();
        Column::with_nulls(ColumnData::Int(status_vals), Bitmap::from_bools(&nulls)).unwrap()
    } else {
        Column::from(status_vals)
    };
    let qty: Vec<i64> = (0..rows).map(|_| (rng.next_u64() % 251) as i64).collect();
    RelationBuilder::new()
        .name("t")
        .column(
            "region",
            (0..rows)
                .map(|i| REGIONS[(i / 64) % 4])
                .collect::<Vec<&str>>(),
        )
        .column("status", status)
        .column("qty", qty)
        .column(
            "amount",
            (0..rows)
                .map(|i| ((i / 64) % 6) as f64)
                .collect::<Vec<f64>>(),
        )
        .column("k", keys)
        .build()
        .expect("valid relation")
}

/// A small build side keyed (with duplicates) on `s2`, join-compatible
/// with the `status` column.
fn gen_side(rng: &mut TestRng) -> Relation {
    let rows = 16 + (rng.next_u64() % 16) as usize;
    let s2: Vec<i64> = (0..rows).map(|_| (rng.next_u64() % 6) as i64).collect();
    let w: Vec<f64> = (0..rows).map(|_| (rng.next_u64() % 9) as f64).collect();
    RelationBuilder::new()
        .column("s2", s2)
        .column("w", w)
        .build()
        .expect("valid relation")
}

/// One of the plan shapes the encoded kernels serve: a dictionary-string
/// filter, selections of varying selectivity under aggregation, a hash
/// join keyed on an RLE column, ORDER BY + LIMIT over a filter, and the
/// whole-column ungrouped aggregate.
fn shaped(src: Frame, kind: usize, sel: u64, side: &Relation) -> Frame {
    match kind {
        0 => src
            .select(Expr::col("region").eq(Expr::lit(REGIONS[(sel % 4) as usize])))
            .project(&["k", "qty"]),
        1 => src
            .select(Expr::col("qty").lt(Expr::lit((sel % 260) as i64)))
            .aggregate(
                &["status"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::sum("amount", "sa"),
                    AggSpec::new(AggFunc::Min, Some("qty"), "lo"),
                    AggSpec::new(AggFunc::Max, Some("qty"), "hi"),
                ],
            ),
        2 => src
            .join(Frame::scan(side.clone()), &[("status", "s2")])
            .select(Expr::col("w").gt_eq(Expr::lit(2.0))),
        3 => src
            .select(Expr::col("amount").gt(Expr::lit((sel % 6) as f64 - 1.0)))
            .order_by(&["k"], &[true])
            .limit(50),
        _ => src.aggregate(
            &[],
            vec![AggSpec::sum("amount", "sa"), AggSpec::count_star("n")],
        ),
    }
}

fn ctx(backend: Backend, threads: usize) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend,
        threads,
        ..RmaOptions::default()
    })
}

/// Joins and aggregates define bags, not sequences: parity compares
/// sorted row renderings unless the plan itself orders.
fn sorted_rows(r: &Relation) -> Vec<String> {
    let mut v: Vec<String> = r.rows().map(|row| format!("{row:?}")).collect();
    v.sort();
    v
}

fn rows_in_order(r: &Relation) -> Vec<String> {
    r.rows().map(|row| format!("{row:?}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode → operate → materialize parity: each shape over the encoded
    /// relation matches the serial plain-scan golden result at every
    /// backend × thread-count combination.
    #[test]
    fn encoded_execution_equals_plain(
        (rows, kind, nulls) in (500usize..1500, 0usize..5, 0usize..3),
        seed in 0u64..u64::MAX,
    ) {
        let _g = sink_lock();
        let mut rng = TestRng::from_seed_u64(seed);
        let plain = gen_rel(rows, [0, 3, 7][nulls], &mut rng);
        let encoded = plain.encoded();
        prop_assert!(
            encoded.columns().iter().any(|c| c.is_encoded()),
            "workload failed to encode"
        );
        let side = gen_side(&mut rng);
        let sel = rng.next_u64();
        let golden = shaped(Frame::scan(plain), kind, sel, &side)
            .collect(&ctx(Backend::Auto, 1))
            .expect("plain golden run");
        let ordered = kind == 3;
        for backend in [Backend::Auto, Backend::Bat, Backend::Dense] {
            for threads in [1usize, 2, 4] {
                let got = shaped(Frame::scan(encoded.clone()), kind, sel, &side)
                    .collect(&ctx(backend, threads))
                    .expect("encoded run");
                if ordered {
                    prop_assert_eq!(
                        rows_in_order(&got),
                        rows_in_order(&golden),
                        "order divergence: {:?} x{}", backend, threads
                    );
                } else {
                    prop_assert_eq!(
                        sorted_rows(&got),
                        sorted_rows(&golden),
                        "row divergence: {:?} x{}", backend, threads
                    );
                }
            }
        }
    }
}

/// The dictionary-predicate fast path: filter on a dict-encoded string
/// column + COUNT(*) runs entirely on codes — zero forced decodes — and
/// still agrees with the plain scan.
#[test]
fn dict_predicate_filter_runs_without_decode_sinks() {
    let _g = sink_lock();
    let mut rng = TestRng::from_seed_u64(7);
    let plain = gen_rel(4096, 0, &mut rng);
    let encoded = plain.encoded();
    assert_eq!(encoded.columns()[0].encoding(), Encoding::Dict);
    let frame = |src: Frame| {
        src.select(Expr::col("region").eq(Expr::lit("west")))
            .aggregate(&[], vec![AggSpec::count_star("n")])
    };
    let c = ctx(Backend::Auto, 1);
    let before = decode_sink_events();
    let got = frame(Frame::scan(encoded)).collect(&c).expect("encoded");
    assert_eq!(
        decode_sink_events(),
        before,
        "dict filter + count must not force a decode"
    );
    let want = frame(Frame::scan(plain)).collect(&c).expect("plain");
    assert_eq!(sorted_rows(&got), sorted_rows(&want));
}

/// The run-aware aggregate fast path: SUM over an RLE float column is
/// value×run-length arithmetic on the runs — zero forced decodes.
#[test]
fn rle_aggregate_runs_without_decode_sinks() {
    let _g = sink_lock();
    let mut rng = TestRng::from_seed_u64(11);
    let plain = gen_rel(4096, 0, &mut rng);
    let encoded = plain.encoded();
    assert_eq!(encoded.columns()[3].encoding(), Encoding::Rle);
    let frame = |src: Frame| src.aggregate(&[], vec![AggSpec::sum("amount", "sa")]);
    let c = ctx(Backend::Auto, 1);
    let before = decode_sink_events();
    let got = frame(Frame::scan(encoded)).collect(&c).expect("encoded");
    assert_eq!(
        decode_sink_events(),
        before,
        "RLE sum must not force a decode"
    );
    let want = frame(Frame::scan(plain)).collect(&c).expect("plain");
    assert_eq!(sorted_rows(&got), sorted_rows(&want));
}

/// Serving-layer observability: the catalog encodes at ingest, `EXPLAIN`
/// renders each scanned table's per-column encodings with the live
/// byte footprint, and the metrics JSON carries the decode-sink count and
/// the encoded/plain storage bytes of every installed generation.
#[test]
fn catalog_tables_report_encodings_in_explain_and_metrics() {
    let _g = sink_lock();
    let mut rng = TestRng::from_seed_u64(3);
    let server = Server::default();
    let session = server.session();
    session
        .create_table("t", gen_rel(4096, 0, &mut rng))
        .expect("create t");

    let snap = session.pin();
    let text = Frame::table("t")
        .select(Expr::col("region").eq(Expr::lit("west")))
        .explain_with(server.context(), &snap);
    assert!(
        text.contains(" enc=["),
        "missing encoding annotation:\n{text}"
    );
    assert!(
        text.contains("region:dict("),
        "region not dict-encoded:\n{text}"
    );
    assert!(
        text.contains("amount:rle("),
        "amount not RLE-encoded:\n{text}"
    );

    let metrics = server.metrics_snapshot();
    assert!(metrics.storage_encoded_bytes > 0);
    assert!(
        metrics.storage_plain_bytes > metrics.storage_encoded_bytes,
        "catalog storage must report a real compression win: {} encoded vs {} plain",
        metrics.storage_encoded_bytes,
        metrics.storage_plain_bytes
    );
    let json = metrics.to_json();
    for key in [
        "\"decode_sinks\"",
        "\"storage_encoded_bytes\"",
        "\"storage_plain_bytes\"",
    ] {
        assert!(json.contains(key), "metrics JSON missing {key}: {json}");
    }
}

/// `EXPLAIN ANALYZE` surfaces forced decodes per node (` sinks=N`), and a
/// session attributes them to its counters: a query that must materialize
/// plain values out of encoded storage reports a nonzero sink count in
/// the server metrics, while the encoded fast-path query stays at zero.
#[test]
fn decode_sinks_attribute_to_sessions_and_explain() {
    let _g = sink_lock();
    let mut rng = TestRng::from_seed_u64(5);
    // serial on purpose: the parallel dense path reads floats per row and
    // (correctly) never fills the decode cache, so the guaranteed-sink
    // half of this test only holds on the serial interpreter
    let server = Server::new(ctx(Backend::Auto, 1));
    let session = server.session();
    session
        .create_table("t", gen_rel(4096, 0, &mut rng))
        .expect("create t");

    // encoded fast path: no sinks recorded anywhere
    session
        .query(
            Frame::table("t")
                .select(Expr::col("region").eq(Expr::lit("west")))
                .aggregate(&[], vec![AggSpec::count_star("n")]),
        )
        .expect("fast-path query");
    assert_eq!(server.metrics_snapshot().decode_sinks, 0);

    // a matrix operation needs plain float vectors: forced decode
    session
        .query(Frame::table("t").project(&["k", "amount"]).qqr(&["k"]))
        .expect("sinking query");
    assert!(
        server.metrics_snapshot().decode_sinks > 0,
        "materializing query must count its decode sinks"
    );

    // sinks count once per payload, on the first decode-cache fill — the
    // analyzed run gets a fresh table so its decodes are its own
    session
        .create_table("t2", gen_rel(4096, 0, &mut rng))
        .expect("create t2");
    let snap = session.pin();
    let analyzed = Frame::table("t2")
        .project(&["k", "amount"])
        .qqr(&["k"])
        .explain_analyze_with(server.context(), &snap)
        .expect("analyze");
    assert!(
        analyzed.contains(" sinks="),
        "EXPLAIN ANALYZE must annotate forced decodes:\n{analyzed}"
    );
}
