//! Out-of-core execution, end to end: forced-spill parity against the
//! in-memory operators, spill-I/O fault injection, governor interaction
//! (admission, cancellation, deadlines — all mid-spill), and the scoped
//! memory-accounting contract.
//!
//! Spill tests share the process-global live-spill-file counter
//! ([`rma_relation::live_spill_files`]), so every test here serializes on
//! one lock: an orphan check must never see a concurrent test's files.

use proptest::prelude::*;
use rma_core::serve::Server;
use rma_core::{Backend, Frame, PlanError, RmaContext, RmaError, RmaOptions, Session};
use rma_relation::par::fault::{FaultKind, FaultPlan};
use rma_relation::{live_spill_files, AggSpec, QueryGuard, Relation, RelationBuilder};
use rma_storage::{Bitmap, Column, ColumnData};
use std::sync::Mutex;
use std::time::Duration;

static SPILL_LOCK: Mutex<()> = Mutex::new(());

/// Spill disk and rejection totals for one session, read back through the
/// public metrics registry (the same numbers `/metrics` JSON reports).
fn session_spill(server: &Server, s: &Session) -> (u64, u64, u64) {
    let snap = server.metrics_snapshot();
    let m = snap
        .sessions
        .iter()
        .find(|m| m.id == s.counters().id())
        .expect("session is registered");
    (m.spill_bytes, m.spill_partitions, m.mem_rejections)
}

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // a poisoned lock only means another spill test failed; the counter
    // checks below are still meaningful
    SPILL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// `n` orders: `cust` cycles a small domain (few-distinct join/group
/// key), `amount` a derived float with heavy ties, `oid` unique.
fn orders(n: i64, custs: i64) -> Relation {
    RelationBuilder::new()
        .name("orders")
        .column("cust", (0..n).map(|i| i % custs).collect::<Vec<i64>>())
        .column(
            "amount",
            (0..n).map(|i| (i % 13) as f64).collect::<Vec<f64>>(),
        )
        .column("oid", (0..n).collect::<Vec<i64>>())
        .build()
        .unwrap()
}

fn customers(k: i64) -> Relation {
    RelationBuilder::new()
        .name("customers")
        .column("cid", (0..k).collect::<Vec<i64>>())
        .column(
            "tier",
            (0..k)
                .map(|i| format!("t{}", i % 3))
                .collect::<Vec<String>>(),
        )
        .build()
        .unwrap()
}

fn tiers() -> Relation {
    RelationBuilder::new()
        .name("tiers")
        .column("tname", vec!["t0", "t1", "t2"])
        .column("label", vec!["bronze", "silver", "gold"])
        .build()
        .unwrap()
}

/// Orders whose key column is one-third NULL — exercises the null-key
/// paths (joins drop them, grouping keeps them as a group).
fn null_heavy_orders(n: usize) -> Relation {
    let vals: Vec<i64> = (0..n as i64).map(|i| i % 7).collect();
    let nulls: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let key = Column::with_nulls(ColumnData::Int(vals), Bitmap::from_bools(&nulls)).unwrap();
    RelationBuilder::new()
        .name("orders")
        .column("cust", key)
        .column(
            "amount",
            (0..n as i64).map(|i| (i % 13) as f64).collect::<Vec<f64>>(),
        )
        .column("oid", (0..n as i64).collect::<Vec<i64>>())
        .build()
        .unwrap()
}

/// Canonical order-free dump: joins and aggregates define bags, not
/// sequences, so parity compares sorted row renderings.
fn sorted_rows(r: &Relation) -> Vec<String> {
    let mut v: Vec<String> = r.rows().map(|row| format!("{row:?}")).collect();
    v.sort();
    v
}

/// In-sequence dump for ORDER BY results, where the order is the result.
fn rows_in_order(r: &Relation) -> Vec<String> {
    r.rows().map(|row| format!("{row:?}")).collect()
}

const TINY_BUDGET: u64 = 4 * 1024;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole parity property: for joins, sorts, and keyed
    /// aggregations, a forced-spill run (tiny budget) returns exactly the
    /// in-memory result, across worker-thread counts and kernel backends,
    /// on few-distinct and null-heavy keys alike.
    #[test]
    fn forced_spill_matches_in_memory(
        threads_idx in 0..3usize,
        backend_idx in 0..3usize,
        null_idx in 0..2usize,
    ) {
        let _serial = lock();
        let with_nulls = null_idx == 1;
        let threads = [1usize, 2, 4][threads_idx];
        let backend = [Backend::Auto, Backend::Bat, Backend::Dense][backend_idx];
        let ctx = RmaContext::new(RmaOptions {
            threads,
            backend,
            ..Default::default()
        });
        let server = Server::new(ctx);
        let mem = server.session();
        let spill = server.session();
        spill.set_mem_budget(TINY_BUDGET);
        let o = if with_nulls {
            null_heavy_orders(4000)
        } else {
            orders(4000, 97)
        };
        mem.create_table("o", o).unwrap();
        mem.create_table("c", customers(97)).unwrap();

        let queries: Vec<Frame> = vec![
            Frame::table("o").join(Frame::table("c"), &[("cust", "cid")]),
            Frame::table("o").order_by(&["amount", "oid"], &[true, false]),
            Frame::table("o").aggregate(
                &["cust"],
                vec![AggSpec::sum("amount", "total"), AggSpec::count_star("n")],
            ),
        ];
        for (i, q) in queries.iter().enumerate() {
            let baseline = mem.query(q.clone()).unwrap();
            let spilled = spill.query(q.clone()).unwrap();
            if i == 1 {
                // sort output order is the contract, compare in sequence
                prop_assert_eq!(rows_in_order(&baseline), rows_in_order(&spilled));
            } else {
                prop_assert_eq!(sorted_rows(&baseline), sorted_rows(&spilled));
            }
        }
        let (bytes, parts, _) = session_spill(&server, &spill);
        prop_assert!(bytes > 0, "forced-spill session never spilled");
        prop_assert!(parts > 0);
        prop_assert_eq!(session_spill(&server, &mem).0, 0);
        prop_assert_eq!(live_spill_files(), 0, "spill temp files leaked");
    }
}

/// The acceptance query pair: a 3-way join and an ORDER BY whose working
/// sets exceed the budget complete correctly with `spill_bytes > 0`,
/// carry spill annotations in EXPLAIN ANALYZE, and spill nothing under an
/// unlimited budget.
#[test]
fn over_budget_three_way_join_and_sort_spill_and_annotate() {
    let _serial = lock();
    // 4 KiB: below every join build (48 B × ≥97 rows) and the sort
    // permutation (8 B × 6000 rows), so both operators must go out of core
    let ctx = RmaContext::new(RmaOptions {
        mem_budget: TINY_BUDGET as usize,
        ..Default::default()
    });
    let unlimited = RmaContext::default();
    let frame = Frame::scan(orders(6000, 97))
        .join(Frame::scan(customers(97)), &[("cust", "cid")])
        .join(Frame::scan(tiers()), &[("tier", "tname")])
        .order_by(&["amount", "oid"], &[true, true]);

    let expect = frame.collect(&unlimited).unwrap();
    assert_eq!(
        unlimited.stats().spill_bytes,
        0,
        "unbudgeted run must not spill"
    );
    let got = frame.collect(&ctx).unwrap();
    assert_eq!(got.len(), 6000);
    // (amount, oid) is a total order, so the sequences must match exactly
    assert_eq!(rows_in_order(&expect), rows_in_order(&got));
    let stats = ctx.stats();
    assert!(
        stats.spill_bytes > 0,
        "over-budget run must report spilled bytes"
    );
    assert!(stats.spill_partitions > 0);

    let annotated = frame.explain_analyze(&ctx).unwrap();
    assert!(
        annotated.contains("spilled="),
        "EXPLAIN ANALYZE missing spill annotation:\n{annotated}"
    );
    let clean = frame.explain_analyze(&unlimited).unwrap();
    assert!(
        !clean.contains("spilled="),
        "unbudgeted EXPLAIN ANALYZE must not carry spill annotations:\n{clean}"
    );
    assert_eq!(live_spill_files(), 0);
}

/// Spill-I/O fault injection: a failed spill write surfaces as the typed
/// `RmaError::SpillIo`, every temp file is removed on the error path, and
/// the session keeps serving (the retry spills successfully).
#[test]
fn spill_io_fault_is_typed_cleans_up_and_session_survives() {
    let _serial = lock();
    let server = Server::default();
    let s = server.session();
    s.create_table("o", orders(8000, 97)).unwrap();
    s.create_table("c", customers(97)).unwrap();
    s.set_mem_budget(TINY_BUDGET);
    let q = Frame::table("o").join(Frame::table("c"), &[("cust", "cid")]);

    // fail the third spill write: partition files already exist on disk
    // when the fault fires, so cleanup is exercised mid-spill
    s.inject_fault(FaultPlan::new(FaultKind::SpillIo, 2));
    let err = s.query(q.clone()).unwrap_err();
    assert!(
        matches!(err, PlanError::Rma(RmaError::SpillIo(_))),
        "got {err:?}"
    );
    assert_eq!(live_spill_files(), 0, "error path leaked spill temp files");

    // the fault plan was one-shot: the same query now runs spilled
    let r = s.query(q).unwrap();
    assert_eq!(r.len(), 8000);
    assert!(session_spill(&server, &s).0 > 0);
    assert_eq!(live_spill_files(), 0);
}

/// A deadline that fires while the external sort is writing or merging
/// runs must surface the typed error and release all spill disk.
#[test]
fn deadline_kill_mid_spill_releases_disk() {
    let _serial = lock();
    let server = Server::default();
    let s = server.session();
    s.create_table("t", orders(400_000, 997)).unwrap();
    s.set_mem_budget(16 * 1024);
    s.set_deadline(Some(Duration::from_millis(2)));
    let err = s
        .query(Frame::table("t").order_by(&["amount", "oid"], &[true, true]))
        .unwrap_err();
    assert!(
        matches!(err, PlanError::Rma(RmaError::DeadlineExceeded)),
        "got {err:?}"
    );
    assert_eq!(
        live_spill_files(),
        0,
        "deadline kill left spill files behind"
    );
    // the session is not poisoned
    s.set_deadline(None);
    let r = s
        .query(Frame::table("t").aggregate(&[], vec![AggSpec::count_star("n")]))
        .unwrap();
    assert_eq!(r.len(), 1);
}

/// Cancellation landing mid-spill (partition write or disk merge) must
/// stop the query with the typed error and release all spill disk.
#[test]
fn cancel_mid_spill_releases_disk() {
    let _serial = lock();
    let server = Server::default();
    let s = server.session();
    s.create_table("t", orders(400_000, 997)).unwrap();
    s.set_mem_budget(16 * 1024);
    let out = std::thread::scope(|scope| {
        let session = &s;
        let h = scope.spawn(move || {
            session.query(Frame::table("t").order_by(&["amount", "oid"], &[true, true]))
        });
        // press cancel until it lands on the running guard (or the query
        // wins the race and finishes — either way no files may survive)
        while !h.is_finished() && !s.cancel() {
            std::thread::yield_now();
        }
        h.join().expect("query thread panicked")
    });
    match out {
        Err(PlanError::Rma(RmaError::Cancelled)) => {}
        Ok(r) => assert_eq!(r.len(), 400_000, "uncancelled run must be correct"),
        Err(other) => panic!("expected Cancelled or a clean result, got {other:?}"),
    }
    assert_eq!(
        live_spill_files(),
        0,
        "cancellation left spill files behind"
    );
}

/// Admission flip: a join whose estimated footprint exceeds the budget —
/// a pre-out-of-core `ResourceExhausted` at admission — is now admitted
/// and runs spilled under the very same budget. Non-spillable plans keep
/// the estimate-based rejection.
#[test]
fn formerly_rejected_join_now_runs_spilled_under_the_same_budget() {
    let _serial = lock();
    let server = Server::default();
    let s = server.session();
    s.create_table("o", orders(4000, 97)).unwrap();
    s.create_table("c", customers(97)).unwrap();
    s.set_mem_budget(2048); // far below the ~128 KB result estimate
    let r = s
        .query(Frame::table("o").join(Frame::table("c"), &[("cust", "cid")]))
        .unwrap();
    assert_eq!(r.len(), 4000);
    let (spill_bytes, _, rejections) = session_spill(&server, &s);
    assert_eq!(rejections, 0, "spillable plan must be admitted");
    assert!(spill_bytes > 0, "it must actually have spilled");
    // a bare scan has no spill path: the estimate stays binding
    let err = s.query(Frame::table("o")).unwrap_err();
    assert!(
        matches!(err, PlanError::Rma(RmaError::ResourceExhausted { .. })),
        "got {err:?}"
    );
    assert_eq!(session_spill(&server, &s).2, 1);
    assert_eq!(live_spill_files(), 0);
}

/// The scoped-accounting regression pair for the old double-charge bug
/// (nested materialization points accumulated for the whole query):
///
/// 1. a join feeding a keyed aggregation runs in memory under a budget
///    that covers the largest single operator but **not** the old running
///    sum of both charges, and every charge is released by the end;
/// 2. the one hard (non-spillable) charge left — top-k's bounded heaps —
///    still trips with the exact documented estimate, pinning it.
#[test]
fn operator_charges_are_scoped_not_cumulative() {
    let _serial = lock();
    let ctx = RmaContext::new(RmaOptions {
        join_reorder: false, // keep customers on the build side
        ..Default::default()
    });
    let frame = Frame::scan(orders(2000, 97))
        .join(Frame::scan(customers(97)), &[("cust", "cid")])
        .aggregate(&["cust"], vec![AggSpec::sum("amount", "total")]);
    // peak = aggregate states 32 B × 2000 = 64 000; the old accounting
    // also kept the 48 B × 97 join build charged, tripping this budget
    let guard = QueryGuard::with_limits(None, 66_000);
    let scope = guard.activate();
    let r = frame.collect(&ctx).unwrap();
    drop(scope);
    assert_eq!(r.len(), 97);
    assert_eq!(
        guard.mem_used(),
        0,
        "operator charges must be released when the operator completes"
    );
    assert_eq!(guard.spill_bytes(), 0, "this budget must not force a spill");

    // top-k: 8 B × n × threads, charged, never spilled — pin it
    let ctx = RmaContext::new(RmaOptions {
        threads: 1,
        mem_budget: 1024,
        ..Default::default()
    });
    let err = Frame::scan(orders(10_000, 97))
        .order_by(&["oid"], &[true])
        .limit(512)
        .collect(&ctx)
        .unwrap_err();
    match err {
        PlanError::Rma(RmaError::ResourceExhausted { needed, budget }) => {
            assert_eq!(budget, 1024);
            assert_eq!(needed, 8 * 512, "the documented top-k heap estimate moved");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}
