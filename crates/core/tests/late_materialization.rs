//! Property test: late materialization is invisible. A selection-vector
//! view and its materialization must be interchangeable everywhere — fed
//! into the plan engine across the Auto/Bat/Dense backends at worker
//! threads ∈ {1, 4}, and through every relational operator with
//! per-operator materialization forced in between. Null-heavy columns are
//! generated on purpose: validity bitmaps must survive gathering,
//! selection-vector probing, and reassembly bit-for-bit.
//!
//! Float columns hold small integer values so parallel partial-sum merges
//! are exact (same contract as the parallel-parity suite).

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::{Backend, RmaContext, RmaOptions};
use rma_relation::{
    aggregate, distinct, join_on, order_by, project, select, AggFunc, AggSpec, Expr, Relation,
    RelationBuilder,
};
use rma_storage::{Column, DataType, Value};

/// A relation with a distinct shuffled int key `k` (null-free, usable as an
/// RMA order schema), a nullable small grouping column `g` (~30% nulls), a
/// nullable integer-valued float column `x` (~30% nulls), and a nullable
/// string tag.
fn gen_rel_nulls(rows: usize, rng: &mut TestRng) -> Relation {
    let mut keys: Vec<i64> = (0..rows as i64).collect();
    for i in (1..rows).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    let g: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 3 {
                Value::Null
            } else {
                Value::Int((rng.next_u64() % 5) as i64)
            }
        })
        .collect();
    let x: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 3 {
                Value::Null
            } else {
                Value::Float((rng.next_u64() % 17) as f64 - 8.0)
            }
        })
        .collect();
    let tag: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 2 {
                Value::Null
            } else {
                Value::Str(format!("t{}", rng.next_u64() % 4))
            }
        })
        .collect();
    RelationBuilder::new()
        .name("r")
        .column("k", keys)
        .column(
            "g",
            Column::from_values_typed(DataType::Int, &g).expect("g column"),
        )
        .column(
            "x",
            Column::from_values_typed(DataType::Float, &x).expect("x column"),
        )
        .column(
            "tag",
            Column::from_values_typed(DataType::Str, &tag).expect("tag column"),
        )
        .build()
        .expect("valid relation")
}

/// A small join side keyed (with duplicates and ~20% nulls) on `g2`.
fn gen_dim_nulls(rng: &mut TestRng) -> Relation {
    let rows = 15 + (rng.next_u64() % 25) as usize;
    let g2: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 2 {
                Value::Null
            } else {
                Value::Int((rng.next_u64() % 6) as i64)
            }
        })
        .collect();
    let w: Vec<f64> = (0..rows).map(|_| (rng.next_u64() % 13) as f64).collect();
    RelationBuilder::new()
        .column(
            "g2",
            Column::from_values_typed(DataType::Int, &g2).expect("g2 column"),
        )
        .column("w", w)
        .build()
        .expect("valid relation")
}

/// A random keep-mask that leaves a non-trivial fraction of rows visible.
fn gen_mask(rows: usize, rng: &mut TestRng) -> Vec<bool> {
    (0..rows)
        .map(|_| !rng.next_u64().is_multiple_of(4))
        .collect()
}

/// Plan shapes covering the parallel pipeline, aggregation over nullable
/// inputs, a join on a nullable key, and sort+limit.
fn build_frame(kind: usize, input: &Relation, dim: &Relation) -> Frame {
    let scan = Frame::scan(input.clone());
    match kind {
        0 => scan
            .select(
                Expr::col("x")
                    .gt(Expr::lit(0.0))
                    .or(Expr::IsNull(Box::new(Expr::col("g")))),
            )
            .project(&["k", "x"]),
        1 => scan.select(Expr::col("k").gt(Expr::lit(5i64))).aggregate(
            &["g"],
            vec![
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Count, Some("x"), "nx"),
                AggSpec::sum("x", "sx"),
                AggSpec::new(AggFunc::Min, Some("tag"), "lo"),
                AggSpec::new(AggFunc::Max, Some("x"), "hi"),
            ],
        ),
        2 => scan
            .join(Frame::scan(dim.clone()), &[("g", "g2")])
            .select(Expr::col("w").gt_eq(Expr::lit(3.0))),
        _ => scan.order_by(&["x", "k"], &[true, false]).limit(9),
    }
}

fn ctx(backend: Backend, threads: usize) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend,
        threads,
        ..RmaOptions::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Feeding a lazy view into the engine is indistinguishable from
    /// feeding its materialization, across backends and thread counts.
    #[test]
    fn view_and_materialized_inputs_execute_identically(
        rows in 200usize..1400,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed_u64(seed);
        let r = gen_rel_nulls(rows, &mut rng);
        let dim = gen_dim_nulls(&mut rng);
        let view = r.filter(&gen_mask(rows, &mut rng));
        let mat = view.materialize();
        prop_assert!(!mat.is_view());
        prop_assert_eq!(&view, &mat);
        for backend in [Backend::Auto, Backend::Bat, Backend::Dense] {
            for threads in [1usize, 4] {
                let c = ctx(backend, threads);
                for kind in 0..4 {
                    let from_view = build_frame(kind, &view, &dim).collect(&c);
                    let from_mat = build_frame(kind, &mat, &dim).collect(&c);
                    match (&from_view, &from_mat) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(
                            a, b,
                            "view/materialized divergence kind={} backend={:?} threads={}",
                            kind, backend, threads
                        ),
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(
                            false,
                            "ok-divergence kind={} backend={:?} threads={}: view_ok={} mat_ok={}",
                            kind, backend, threads, a.is_ok(), b.is_ok()
                        ),
                    }
                }
            }
        }
    }

    /// Every relational operator gives the same answer whether its inputs
    /// arrive as lazy views or are force-materialized first — i.e. a
    /// `materialize()` inserted at any operator boundary is a no-op.
    #[test]
    fn operators_commute_with_materialize(
        rows in 100usize..900,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed_u64(seed);
        let r = gen_rel_nulls(rows, &mut rng);
        let dim = gen_dim_nulls(&mut rng);
        let view = r.filter(&gen_mask(rows, &mut rng));
        let mat = view.materialize();

        let pred = Expr::col("x").lt_eq(Expr::lit(4.0)).or(
            Expr::IsNull(Box::new(Expr::col("tag"))),
        );
        let lazy_sel = select(&view, &pred).expect("σ");
        let mat_sel = select(&mat, &pred).expect("σ").materialize();
        prop_assert_eq!(&lazy_sel, &mat_sel);

        let lazy_proj = project(&lazy_sel, &["g", "x", "k"]).expect("π");
        let mat_proj = project(&mat_sel, &["g", "x", "k"]).expect("π").materialize();
        prop_assert_eq!(&lazy_proj, &mat_proj);

        let lazy_join = join_on(&lazy_sel, &dim, &[("g", "g2")]).expect("⋈");
        let mat_join = join_on(&mat_sel, &dim, &[("g", "g2")]).expect("⋈");
        prop_assert_eq!(&lazy_join, &mat_join);

        let aggs = [
            AggSpec::count_star("n"),
            AggSpec::sum("x", "sx"),
            AggSpec::avg("x", "ax"),
        ];
        let lazy_agg = aggregate(&lazy_proj, &["g"], &aggs).expect("ϑ");
        let mat_agg = aggregate(&mat_proj, &["g"], &aggs).expect("ϑ");
        prop_assert_eq!(&lazy_agg, &mat_agg);

        let lazy_sorted = order_by(&lazy_proj, &["x", "k"], &[false, true]).expect("sort");
        let mat_sorted = order_by(&mat_proj, &["x", "k"], &[false, true])
            .expect("sort")
            .materialize();
        prop_assert_eq!(&lazy_sorted, &mat_sorted);

        let lazy_distinct = distinct(&project(&view, &["g", "tag"]).expect("π")).expect("δ");
        let mat_distinct =
            distinct(&project(&mat, &["g", "tag"]).expect("π").materialize()).expect("δ");
        prop_assert_eq!(&lazy_distinct, &mat_distinct);
    }
}

/// Deterministic spot check: an RMA kernel (qqr) over a view input equals
/// the same kernel over the materialized input, across backends and thread
/// counts (matrices reject nulls, so this uses the null-free columns).
#[test]
fn rma_kernel_over_view_matches_materialized() {
    let mut rng = TestRng::from_seed_u64(11);
    let rows = 600;
    let mut keys: Vec<i64> = (0..rows as i64).collect();
    for i in (1..rows).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    let a: Vec<f64> = (0..rows)
        .map(|_| (rng.next_u64() % 9) as f64 - 4.0)
        .collect();
    let b: Vec<f64> = (0..rows).map(|_| (rng.next_u64() % 7) as f64).collect();
    let r = RelationBuilder::new()
        .name("m")
        .column("k", keys)
        .column("a", a)
        .column("b", b)
        .build()
        .expect("valid relation");
    let mask = gen_mask(rows, &mut rng);
    let view = r.filter(&mask);
    assert!(view.is_view());
    let mat = view.materialize();
    for backend in [Backend::Auto, Backend::Bat, Backend::Dense] {
        for threads in [1usize, 4] {
            let c = ctx(backend, threads);
            let from_view = Frame::scan(view.clone())
                .qqr(&["k"])
                .collect(&c)
                .expect("qqr over view");
            let from_mat = Frame::scan(mat.clone())
                .qqr(&["k"])
                .collect(&c)
                .expect("qqr over materialized");
            assert_eq!(
                from_view, from_mat,
                "qqr divergence backend={backend:?} threads={threads}"
            );
        }
    }
}

/// Deterministic spot check: a view of an *empty* selection flows through
/// the whole pipeline.
#[test]
fn empty_view_pipelines() {
    let mut rng = TestRng::from_seed_u64(3);
    let r = gen_rel_nulls(300, &mut rng);
    let dim = gen_dim_nulls(&mut rng);
    let none = r.filter(&vec![false; r.len()]);
    assert_eq!(none.len(), 0);
    for kind in 0..4 {
        let out = build_frame(kind, &none, &dim)
            .collect(&ctx(Backend::Auto, 4))
            .expect("empty pipeline");
        // aggregation over zero groups yields zero rows; everything else too
        assert!(out.len() <= 1, "kind={kind} produced {} rows", out.len());
    }
}
