//! Fault-injection property test of the resource governor (run in its own
//! process so the process-global `threads_spawned` counter is race-free,
//! like `pool_reuse.rs`).
//!
//! Random faults — a panic, a delay, or a spurious budget breach at a
//! random morsel poll — are injected into sessions across worker-thread
//! counts {1, 2, 4} and all three kernel backends. Whatever fires, the
//! contract is the same:
//!
//! - the query ends in a **typed** error or the **correct** result, never
//!   an unwinding panic escaping the session boundary;
//! - the pool never respawns a thread (worker panics are contained, not
//!   fatal to the worker loop);
//! - a follow-up query on the same session succeeds with the correct
//!   result — no poisoned pool, catalog, or metrics state.

use proptest::prelude::*;
use rma_core::serve::Server;
use rma_core::{Backend, Frame, PlanError, RmaContext, RmaError, RmaOptions};
use rma_relation::par::fault::{FaultKind, FaultPlan};
use rma_relation::{threads_spawned, AggSpec, RelationBuilder};
use rma_storage::Value;
use std::time::Duration;

const ROWS: i64 = 20_000;

fn sum_query() -> Frame {
    Frame::table("t").aggregate(&[], vec![AggSpec::sum("x", "s")])
}

fn expected_sum() -> i64 {
    (0..ROWS).sum()
}

fn check_sum(r: &rma_relation::Relation) {
    assert_eq!(r.column("s").unwrap().get(0), Value::Int(expected_sum()));
}

/// A typed governor outcome — anything else is a contract violation.
fn is_typed_governor_error(e: &PlanError) -> bool {
    matches!(
        e,
        PlanError::Rma(
            RmaError::Cancelled
                | RmaError::DeadlineExceeded
                | RmaError::ResourceExhausted { .. }
                | RmaError::WorkerPanicked { .. }
        )
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_faults_end_typed_and_leave_the_session_serviceable(
        threads_idx in 0..3usize,
        backend_idx in 0..3usize,
        kind_idx in 0..3usize,
        at in 0..8u64,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let backend = [Backend::Auto, Backend::Bat, Backend::Dense][backend_idx];
        let kind = match kind_idx {
            0 => FaultKind::Panic,
            1 => FaultKind::Delay(Duration::from_millis(2)),
            _ => FaultKind::BudgetBreach,
        };

        let ctx = RmaContext::new(RmaOptions {
            threads,
            backend,
            ..Default::default()
        });
        let server = Server::new(ctx);
        let session = server.session();
        session
            .create_table(
                "t",
                RelationBuilder::new()
                    .column("x", (0..ROWS).collect::<Vec<i64>>())
                    .build()
                    .unwrap(),
            )
            .unwrap();

        // settle the pool with one clean query, then freeze the global
        // spawn counter: nothing below may create or respawn a thread
        check_sum(&session.query(sum_query()).unwrap());
        let spawned_before = threads_spawned();

        session.inject_fault(FaultPlan::new(kind, at));
        match session.query(sum_query()) {
            Ok(r) => check_sum(&r), // fault never fired (serial path) or was a delay
            Err(e) => prop_assert!(
                is_typed_governor_error(&e),
                "fault {kind_idx}@{at} on {threads} threads leaked an untyped error: {e:?}"
            ),
        }

        // the same session keeps serving, with the correct answer
        check_sum(&session.query(sum_query()).unwrap());
        prop_assert_eq!(
            threads_spawned(),
            spawned_before,
            "a worker thread was respawned after the injected fault"
        );
    }
}
