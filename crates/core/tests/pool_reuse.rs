//! The worker pool is a session-lifetime substrate: consecutive `execute`
//! calls on one context must run on the same parked workers, never on
//! freshly spawned threads. This is the test the ISSUE's acceptance
//! criterion names — it is what proves no per-operator `thread::scope`
//! spawns remain in `plan::par` / `algebra::parallel` / `algebra::sort`.
//!
//! Kept in its own integration-test binary: `rma_relation::threads_spawned`
//! is a process-wide counter, and a dedicated process keeps concurrent
//! tests from spawning pools of their own while we assert it is stable.

use rma_core::plan::Frame;
use rma_core::{RmaContext, RmaOptions};
use rma_relation::{threads_spawned, AggSpec, Expr, RelationBuilder};

#[test]
fn pool_threads_are_reused_across_execute_calls() {
    let rows = 6000usize;
    let table = {
        let s: Vec<i64> = (0..rows).map(|i| ((i * 37) % 101) as i64).collect();
        let g: Vec<i64> = (0..rows).map(|i| (i % 9) as i64).collect();
        let x: Vec<f64> = (0..rows).map(|i| ((i * 13) % 29) as f64).collect();
        RelationBuilder::new()
            .name("t")
            .column("s", s)
            .column("g", g)
            .column("x", x)
            .build()
            .unwrap()
    };
    let side = {
        let g2: Vec<i64> = (0..40i64).map(|i| i % 9).collect();
        let w: Vec<f64> = (0..40).map(|i| i as f64).collect();
        RelationBuilder::new()
            .column("g2", g2)
            .column("w", w)
            .build()
            .unwrap()
    };

    // every pooled operator kind: fused pipeline, aggregation, hash join,
    // full sort, and the Limit-into-Sort top-k rewrite
    let frames = [
        Frame::scan(table.clone())
            .select(Expr::col("x").gt(Expr::lit(4.0)))
            .project(&["s", "x"]),
        Frame::scan(table.clone()).aggregate(
            &["g"],
            vec![AggSpec::count_star("n"), AggSpec::sum("x", "sx")],
        ),
        Frame::scan(table.clone()).join(Frame::scan(side), &[("g", "g2")]),
        Frame::scan(table.clone()).order_by(&["s", "x"], &[true, false]),
        Frame::scan(table)
            .order_by(&["x", "s"], &[false, true])
            .limit(25),
    ];

    let ctx = RmaContext::new(RmaOptions {
        threads: 3,
        ..RmaOptions::default()
    });
    assert_eq!(ctx.pool().threads(), 3);

    // first pass: the context's pool (created at construction) does all the
    // spawning there will ever be
    for f in &frames {
        f.collect(&ctx).expect("warm-up execute");
    }
    let spawned_after_warmup = threads_spawned();
    let jobs_after_warmup = ctx.pool().jobs_run();
    assert!(
        jobs_after_warmup > 0,
        "parallel operators must enlist the pool"
    );

    // many more executes across every operator kind: job count grows,
    // thread count does not
    for _ in 0..5 {
        for f in &frames {
            f.collect(&ctx).expect("repeat execute");
        }
    }
    assert_eq!(
        threads_spawned(),
        spawned_after_warmup,
        "consecutive execute calls must reuse the parked pool workers, \
         not respawn threads"
    );
    let jobs_after_repeats = ctx.pool().jobs_run();
    assert!(
        jobs_after_repeats >= jobs_after_warmup + 25,
        "each repeated execute must submit pool jobs \
         (warm-up {jobs_after_warmup}, after repeats {jobs_after_repeats})"
    );
}
