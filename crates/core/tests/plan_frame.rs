//! Integration tests of the lazy `Frame` API: plan building, the shared
//! optimizer's rewrites, and lazy/eager agreement on concrete pipelines.

use rma_core::plan::Frame;
use rma_core::{RmaContext, RmaOptions, SortPolicy};
use rma_relation::{Expr, Relation, RelationBuilder};

/// Unsorted four-row weather relation (the paper's Figure 2).
fn weather() -> Relation {
    RelationBuilder::new()
        .name("r")
        .column("T", vec!["5am", "8am", "7am", "6am"])
        .column("H", vec![1.0f64, 8.0, 6.0, 1.0])
        .column("W", vec![3.0f64, 5.0, 7.0, 4.0])
        .build()
        .unwrap()
}

/// A 4×4 numeric relation with an integer key, invertible application part.
fn square() -> Relation {
    RelationBuilder::new()
        .name("m")
        .column("k", vec![3i64, 1, 4, 2])
        .column("a", vec![2.0f64, 1.0, 0.0, 1.0])
        .column("b", vec![0.0f64, 3.0, 1.0, 0.0])
        .column("c", vec![1.0f64, 0.0, 2.0, 1.0])
        .column("d", vec![0.0f64, 1.0, 0.0, 4.0])
        .build()
        .unwrap()
}

#[test]
fn consecutive_rma_ops_same_order_schema_sort_once() {
    let ctx = RmaContext::default();
    let lazy = Frame::scan(square())
        .inv(&["k"])
        .inv(&["k"])
        .collect(&ctx)
        .unwrap();
    // the optimizer proves inv's output is sorted by k, so the second inv
    // skips its sort: exactly one sort for the whole pipeline
    assert_eq!(ctx.stats().sorts, 1, "expected exactly one sort");

    // the eager API sorts per operation
    let eager_ctx = RmaContext::default();
    let step = eager_ctx.inv(&square(), &["k"]).unwrap();
    let eager = eager_ctx.inv(&step, &["k"]).unwrap();
    assert_eq!(eager_ctx.stats().sorts, 2);

    assert_eq!(lazy.schema(), eager.schema());
    assert!(lazy.bag_equals(&eager));
}

#[test]
fn explain_snapshot_shows_sort_elimination() {
    let ctx = RmaContext::default();
    let explained = Frame::scan(square()).inv(&["k"]).inv(&["k"]).explain(&ctx);
    // the outer inv's argument is flagged; the inner one still sorts
    assert_eq!(
        explained.matches("(sorted: skip sort)").count(),
        1,
        "unexpected explain:\n{explained}"
    );
    let first_rma = explained.find("Rma INV").unwrap();
    let flagged = explained.find("(sorted: skip sort)").unwrap();
    assert!(
        flagged > first_rma && flagged < explained.rfind("Rma INV").unwrap(),
        "the *outer* operation should skip its sort:\n{explained}"
    );
}

#[test]
fn sort_elimination_not_applied_when_inner_op_skips_its_sort() {
    // qqr under the optimised policy keeps physical order, so its output is
    // NOT sorted and the downstream inv must still sort
    let ctx = RmaContext::default();
    let lazy = Frame::scan(square())
        .qqr(&["k"])
        .inv(&["k"])
        .collect(&ctx)
        .unwrap();
    assert_eq!(ctx.stats().sorts, 1, "inv must sort after a no-sort qqr");

    let eager_ctx = RmaContext::default();
    let step = eager_ctx.qqr(&square(), &["k"]).unwrap();
    let eager = eager_ctx.inv(&step, &["k"]).unwrap();
    assert!(lazy.bag_equals(&eager));
}

#[test]
fn order_by_feeds_sortedness_into_rma() {
    let ctx = RmaContext::default();
    let frame = Frame::scan(square()).order_by(&["k"], &[]).inv(&["k"]);
    let explained = frame.explain(&ctx);
    assert!(
        explained.contains("(sorted: skip sort)"),
        "OrderBy should satisfy inv's sort:\n{explained}"
    );
    let out = frame.collect(&ctx).unwrap();
    assert_eq!(ctx.stats().sorts, 0);
    let eager = RmaContext::default().inv(&square(), &["k"]).unwrap();
    assert!(out.bag_equals(&eager));
}

#[test]
fn always_policy_keeps_every_sort() {
    let ctx = RmaContext::new(RmaOptions {
        sort_policy: SortPolicy::Always,
        ..RmaOptions::default()
    });
    Frame::scan(square())
        .inv(&["k"])
        .inv(&["k"])
        .collect(&ctx)
        .unwrap();
    assert_eq!(ctx.stats().sorts, 2, "Always is the unoptimised baseline");
}

#[test]
fn selection_pushdown_below_mmu() {
    let r = square();
    let s = RelationBuilder::new()
        .column("j", vec![2i64, 1, 3, 4])
        .column("x", vec![1.0f64, 0.5, -1.0, 2.0])
        .build()
        .unwrap();
    let ctx = RmaContext::default();
    let frame = Frame::scan(r.clone())
        .mmu(&["k"], Frame::scan(s.clone()), &["j"])
        .select(Expr::col("k").lt(Expr::lit(3i64)));
    let explained = frame.explain(&ctx);
    let rma = explained.find("Rma MMU").unwrap();
    let select = explained.find("Select").unwrap();
    assert!(
        select > rma,
        "selection on the order schema should sink below mmu:\n{explained}"
    );
    assert!(explained.contains("AssertKey"), "{explained}");

    // results agree with the eager order of operations
    let lazy = frame.collect(&ctx).unwrap();
    let eager_ctx = RmaContext::default();
    let product = eager_ctx.mmu(&r, &["k"], &s, &["j"]).unwrap();
    let eager = rma_relation::select(&product, &Expr::col("k").lt(Expr::lit(3i64))).unwrap();
    assert_eq!(lazy.schema(), eager.schema());
    assert!(lazy.bag_equals(&eager));
}

#[test]
fn selection_pushdown_preserves_key_errors() {
    // duplicate keys in the unfiltered input must still error even though
    // the pushed-down filter would make the keys unique
    let dup = RelationBuilder::new()
        .column("k", vec![1i64, 1, 2])
        .column("a", vec![1.0f64, 2.0, 3.0])
        .build()
        .unwrap();
    let s = RelationBuilder::new()
        .column("j", vec![1i64])
        .column("x", vec![1.0f64])
        .build()
        .unwrap();
    let ctx = RmaContext::default();
    let result = Frame::scan(dup)
        .mmu(&["k"], Frame::scan(s), &["j"])
        .select(Expr::col("k").gt(Expr::lit(1i64)))
        .collect(&ctx);
    assert!(result.is_err(), "key violation must survive the rewrite");
}

#[test]
fn selection_not_pushed_below_row_coupling_ops() {
    // qqr's base result depends on all input rows; the filter must stay
    let ctx = RmaContext::default();
    let explained = Frame::scan(square())
        .qqr(&["k"])
        .select(Expr::col("k").gt(Expr::lit(1i64)))
        .explain(&ctx);
    let select = explained.find("Select").unwrap();
    let rma = explained.find("Rma QQR").unwrap();
    assert!(select < rma, "filter must stay above qqr:\n{explained}");
}

#[test]
fn projection_pushdown_prunes_scan_columns() {
    let ctx = RmaContext::default();
    let explained = Frame::scan(weather()).project(&["H"]).explain(&ctx);
    assert!(
        explained.contains("project=[H]"),
        "scan should prune to the projected column:\n{explained}"
    );
    let out = Frame::scan(weather())
        .project(&["H"])
        .collect(&ctx)
        .unwrap();
    let names: Vec<&str> = out.schema().names().collect();
    assert_eq!(names, vec!["H"]);
    assert_eq!(out.len(), 4);
}

#[test]
fn projection_pushdown_keeps_predicate_columns() {
    let ctx = RmaContext::default();
    let frame = Frame::scan(weather())
        .select(Expr::col("W").gt(Expr::lit(4.0)))
        .project(&["H"]);
    let explained = frame.explain(&ctx);
    assert!(
        explained.contains("project=[H, W]"),
        "the predicate's column must survive pruning:\n{explained}"
    );
    let out = frame.collect(&ctx).unwrap();
    assert_eq!(out.len(), 2); // W ∈ {5, 7}
}

#[test]
fn plan_level_backend_choice_is_annotated_and_honoured() {
    let ctx = RmaContext::default(); // Auto
    let frame = Frame::scan(square()).inv(&["k"]);
    let explained = frame.explain(&ctx);
    assert!(
        explained.contains("backend=Dense"),
        "statically-sized inv should choose the dense kernel:\n{explained}"
    );
    frame.collect(&ctx).unwrap();
    assert_eq!(ctx.stats().last_kernel, Some(rma_core::KernelUsed::Dense));

    // a tiny budget flips the plan-level choice to the BAT kernel
    let tight = RmaContext::new(RmaOptions {
        dense_memory_budget: 16, // bytes
        ..RmaOptions::default()
    });
    let explained = Frame::scan(square()).inv(&["k"]).explain(&tight);
    assert!(explained.contains("backend=Bat"), "{explained}");
    Frame::scan(square()).inv(&["k"]).collect(&tight).unwrap();
    assert_eq!(tight.stats().last_kernel, Some(rma_core::KernelUsed::Bat));
}

#[test]
fn lazy_pipeline_matches_eager_composition() {
    // a mixed relational + matrix pipeline, lazy vs eager
    let r = weather();
    let ctx = RmaContext::default();
    let lazy = Frame::scan(r.clone())
        .select(Expr::col("T").gt(Expr::lit("5am")))
        .qqr(&["T"])
        .collect(&ctx)
        .unwrap();

    let eager_ctx = RmaContext::default();
    let filtered = rma_relation::select(&r, &Expr::col("T").gt(Expr::lit("5am"))).unwrap();
    let eager = eager_ctx.qqr(&filtered, &["T"]).unwrap();
    assert_eq!(lazy.schema(), eager.schema());
    assert!(lazy.bag_equals(&eager));
}

#[test]
fn binary_ops_compose_lazily() {
    let r = weather();
    let s = RelationBuilder::new()
        .column("T2", vec!["6am", "5am", "8am", "7am"])
        .column("H2", vec![2.0f64, 1.0, 4.0, 3.0])
        .column("W2", vec![1.0f64, 2.0, 3.0, 4.0])
        .build()
        .unwrap();
    let ctx = RmaContext::default();
    let lazy = Frame::scan(r.clone())
        .add(&["T"], Frame::scan(s.clone()), &["T2"])
        .collect(&ctx)
        .unwrap();
    let eager = RmaContext::default().add(&r, &["T"], &s, &["T2"]).unwrap();
    assert_eq!(lazy.schema(), eager.schema());
    assert!(lazy.bag_equals(&eager));
}

#[test]
fn element_wise_on_sorted_inputs_needs_no_alignment_sort() {
    let r = weather().sorted_by(&["T"]).unwrap();
    let s = RelationBuilder::new()
        .column("T2", vec!["5am", "6am", "7am", "8am"])
        .column("H2", vec![1.0f64, 2.0, 3.0, 4.0])
        .column("W2", vec![2.0f64, 1.0, 0.0, -1.0])
        .build()
        .unwrap();
    let ctx = RmaContext::default();
    // both inputs pass through an explicit sort, so the optimizer knows
    // they are aligned and the add needs zero sort computations
    let lazy = Frame::scan(r.clone())
        .order_by(&["T"], &[])
        .add(
            &["T"],
            Frame::scan(s.clone()).order_by(&["T2"], &[]),
            &["T2"],
        )
        .collect(&ctx)
        .unwrap();
    assert_eq!(ctx.stats().sorts, 0);
    let eager = RmaContext::default().add(&r, &["T"], &s, &["T2"]).unwrap();
    assert!(lazy.bag_equals(&eager));
}

#[test]
fn named_table_scans_resolve_through_a_provider() {
    struct OneTable(Relation);
    impl rma_core::TableProvider for OneTable {
        fn table(&self, name: &str) -> Option<&Relation> {
            (name == "w").then_some(&self.0)
        }
    }
    // default row-range partitioning is enough for any in-memory provider
    impl rma_core::PartitionedTableProvider for OneTable {}
    let provider = OneTable(weather());
    let ctx = RmaContext::default();
    let out = Frame::table("w")
        .tra(&["T"])
        .collect_with(&ctx, &provider)
        .unwrap();
    assert_eq!(out.len(), 2); // H and W rows
    let err = Frame::table("missing").collect_with(&ctx, &provider);
    assert!(matches!(err, Err(rma_core::PlanError::UnknownTable(_))));
    // without a provider the scan cannot resolve
    assert!(Frame::table("w").collect(&ctx).is_err());
}

#[test]
fn double_transpose_eliminated_in_core_plans() {
    let ctx = RmaContext::default();
    let frame = Frame::scan(weather()).tra(&["T"]).tra(&["C"]);
    let explained = frame.explain(&ctx);
    assert!(
        !explained.contains("Rma"),
        "double transpose should be rewritten:\n{explained}"
    );
    assert!(explained.contains("AssertKey"), "{explained}");
    let out = frame.collect(&ctx).unwrap();
    // the rewrite equals the actual double transpose
    let eager_ctx = RmaContext::default();
    let t1 = eager_ctx.tra(&weather(), &["T"]).unwrap();
    let t2 = eager_ctx.tra(&t1, &["C"]).unwrap();
    assert_eq!(out.schema(), t2.schema());
    assert!(out.bag_equals(&t2));
}
