//! Cost-based join ordering: EXPLAIN snapshots showing that table
//! statistics flip the join order away from the written order, and a
//! parity property test asserting that reordered plans return exactly the
//! same bag of rows as written-order execution — across the Auto/Bat/Dense
//! backends at 1 and 4 worker threads.

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::{Backend, RmaContext, RmaOptions};
use rma_relation::{AggFunc, AggSpec, Expr, Relation, RelationBuilder};

/// A fact table of `rows` tuples with a unique key `k`, foreign keys into
/// two (or three) dimension tables, and a float payload.
fn fact(rows: usize, dims: [usize; 3]) -> Relation {
    RelationBuilder::new()
        .name("fact")
        .column("k", (0..rows as i64).collect::<Vec<_>>())
        .column(
            "fa",
            (0..rows)
                .map(|i| (i * 7 % dims[0]) as i64)
                .collect::<Vec<_>>(),
        )
        .column(
            "fb",
            (0..rows)
                .map(|i| (i * 11 % dims[1]) as i64)
                .collect::<Vec<_>>(),
        )
        .column(
            "fc",
            (0..rows)
                .map(|i| (i * 13 % dims[2]) as i64)
                .collect::<Vec<_>>(),
        )
        .column("x", (0..rows).map(|i| (i % 10) as f64).collect::<Vec<_>>())
        .build()
        .unwrap()
}

/// A dimension of `rows` tuples: unique key `<p>k`, integer payload `<p>p`
/// uniform in `0..payload_dv`, float weight `<p>w`.
fn dim(name: &str, p: &str, rows: usize, payload_dv: usize) -> Relation {
    RelationBuilder::new()
        .name(name)
        .column(format!("{p}k"), (0..rows as i64).collect::<Vec<_>>())
        .column(
            format!("{p}p"),
            (0..rows)
                .map(|i| (i % payload_dv.max(1)) as i64)
                .collect::<Vec<_>>(),
        )
        .column(
            format!("{p}w"),
            (0..rows).map(|i| (i % 5) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

/// Indentation depth of the (unique) `JoinOn` line whose pair list
/// mentions `col`. Deeper joins execute earlier, so comparing depths
/// asserts the chosen join *order* independent of probe/build
/// orientation.
fn join_depth(plan: &str, col: &str) -> usize {
    let needle = format!("\"{col}\"");
    plan.lines()
        .find(|l| l.contains("JoinOn") && l.contains(&needle))
        .map(|l| l.len() - l.trim_start().len())
        .unwrap_or_else(|| panic!("no JoinOn on {col}:\n{plan}"))
}

#[test]
fn explain_three_way_join_is_reordered_by_stats() {
    // written order joins the large unfiltered dimension first; the
    // selective filter on the second dimension makes joining it first far
    // cheaper
    let f = fact(1000, [400, 50, 10]);
    let da = dim("da", "a", 400, 1);
    let db = dim("db", "b", 50, 50);
    let frame = Frame::scan(f)
        .join(Frame::scan(da), &[("fa", "ak")])
        .join(Frame::scan(db), &[("fb", "bk")])
        .select(Expr::col("bp").eq(Expr::lit(3i64)));
    let plan = frame.explain(&RmaContext::default());
    // per-node cost annotations are printed
    assert!(plan.contains("rows≈"), "missing rows estimate:\n{plan}");
    assert!(plan.contains("cost≈"), "missing cost estimate:\n{plan}");
    // the selective db join executes first (deeper), despite being
    // written last
    assert!(
        join_depth(&plan, "bk") > join_depth(&plan, "ak"),
        "db should be joined before da:\n{plan}"
    );
    // and the written column order is restored by a projection
    let out = frame.collect(&RmaContext::default()).unwrap();
    let names: Vec<&str> = out.schema().names().collect();
    assert_eq!(
        names,
        vec!["k", "fa", "fb", "fc", "x", "ak", "ap", "aw", "bk", "bp", "bw"]
    );
}

#[test]
fn explain_four_way_join_orders_most_selective_first() {
    let f = fact(2000, [500, 100, 40]);
    let da = dim("da", "a", 500, 1);
    let db = dim("db", "b", 100, 1);
    let dc = dim("dc", "c", 40, 40);
    let frame = Frame::scan(f)
        .join(Frame::scan(da), &[("fa", "ak")])
        .join(Frame::scan(db), &[("fb", "bk")])
        .join(Frame::scan(dc), &[("fc", "ck")])
        .select(Expr::col("cp").eq(Expr::lit(1i64)));
    let ctx = RmaContext::default();
    let plan = frame.explain(&ctx);
    // dc (filtered to ~1/40) joins the fact table first: its join is the
    // deepest, despite being written last
    let dc_depth = join_depth(&plan, "ck");
    assert!(
        dc_depth > join_depth(&plan, "ak") && dc_depth > join_depth(&plan, "bk"),
        "dc should be joined first:\n{plan}"
    );
    // snapshot of the shape: three JoinOn nodes, one restoring Project
    assert_eq!(plan.matches("JoinOn").count(), 3, "{plan}");
    assert!(plan.starts_with("Project"), "{plan}");
}

#[test]
fn different_stats_flip_the_chosen_order() {
    // identical query, different data distributions: the filtered
    // dimension with many distinct payload values is the selective one
    let build = |a_dv: usize, b_dv: usize| {
        let f = fact(1000, [200, 200, 10]);
        let da = dim("da", "a", 200, a_dv);
        let db = dim("db", "b", 200, b_dv);
        Frame::scan(f)
            .join(Frame::scan(da), &[("fa", "ak")])
            .join(Frame::scan(db), &[("fb", "bk")])
            .select(
                Expr::col("ap")
                    .eq(Expr::lit(0i64))
                    .and(Expr::col("bp").eq(Expr::lit(0i64))),
            )
    };
    let ctx = RmaContext::default();
    // skew on da: ap has 100 distinct values, bp only 1 → da is selective
    let plan_a = build(100, 1).explain(&ctx);
    // skew on db: the same query now prefers db first
    let plan_b = build(1, 100).explain(&ctx);
    assert!(
        join_depth(&plan_a, "ak") > join_depth(&plan_a, "bk"),
        "skewed da should join first:\n{plan_a}"
    );
    assert!(
        join_depth(&plan_b, "bk") > join_depth(&plan_b, "ak"),
        "skewed db should join first:\n{plan_b}"
    );
}

#[test]
fn two_way_join_builds_on_the_smaller_side() {
    // written with the small dimension as the left (probe) side; join_on
    // builds its hash table on the right input, so the enumerator flips
    // the sides to build on the 50-row dimension instead of the 2000-row
    // fact table — and restores the written column order on top
    let f = fact(2000, [50, 50, 10]);
    let d = dim("da", "a", 50, 1);
    let frame = Frame::scan(d).join(Frame::scan(f), &[("ak", "fa")]);
    let ctx = RmaContext::default();
    let plan = frame.explain(&ctx);
    let fact_pos = plan.find("Values fact").expect("fact leaf");
    let da_pos = plan.find("Values da").expect("da leaf");
    assert!(
        fact_pos < da_pos,
        "fact should be the probe (left) side:\n{plan}"
    );
    let out = frame.collect(&ctx).unwrap();
    let names: Vec<&str> = out.schema().names().collect();
    assert_eq!(names[..3], ["ak", "ap", "aw"], "written order restored");
}

#[test]
fn reorder_disabled_keeps_written_order() {
    let f = fact(1000, [400, 50, 10]);
    let da = dim("da", "a", 400, 1);
    let db = dim("db", "b", 50, 50);
    let frame = Frame::scan(f)
        .join(Frame::scan(da), &[("fa", "ak")])
        .join(Frame::scan(db), &[("fb", "bk")])
        .select(Expr::col("bp").eq(Expr::lit(3i64)));
    let ctx = RmaContext::new(RmaOptions {
        join_reorder: false,
        ..RmaOptions::default()
    });
    let plan = frame.explain(&ctx);
    let da_pos = plan.find("Values da").expect("da leaf");
    let db_pos = plan.find("Values db").expect("db leaf");
    assert!(da_pos < db_pos, "written order must survive:\n{plan}");
}

// ---------------------------------------------------------------------
// Parity: reordered == written-order results, any backend, any threads
// ---------------------------------------------------------------------

fn ctx(backend: Backend, threads: usize, join_reorder: bool) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend,
        threads,
        join_reorder,
        ..RmaOptions::default()
    })
}

/// A random star query over the generated tables: joins in a deliberately
/// arbitrary written order plus a random filter, then one of several tops
/// (plain, aggregate, top-k, QQR over the joined relation).
fn build_query(kind: usize, f: &Relation, da: &Relation, db: &Relation) -> Frame {
    let joined = Frame::scan(f.clone())
        .join(Frame::scan(da.clone()), &[("fa", "ak")])
        .join(Frame::scan(db.clone()), &[("fb", "bk")]);
    match kind {
        0 => joined.select(Expr::col("ap").lt(Expr::lit(2i64))),
        1 => joined
            .select(Expr::col("bp").eq(Expr::lit(0i64)))
            .aggregate(
                &["ap"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::sum("x", "sx"),
                    AggSpec::new(AggFunc::Max, Some("bw"), "hi"),
                ],
            ),
        2 => joined
            .select(Expr::col("aw").gt_eq(Expr::lit(1.0)))
            .order_by(&["k"], &[true])
            .limit(9),
        _ => joined
            .select(Expr::col("ap").lt(Expr::lit(3i64)))
            .project(&["k", "x", "aw", "bw"])
            .qqr(&["k"]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reordered_plans_return_identical_bags(
        (rows, a_rows, b_rows, kind) in (200usize..900, 20usize..200, 5usize..60, 0usize..4),
        seed in 0u64..u64::MAX,
    ) {
        // vary payload cardinality with the seed so different cases skew
        // different sides
        let a_dv = 1 + (seed % 40) as usize;
        let b_dv = 1 + (seed / 40 % 40) as usize;
        let f = fact(rows, [a_rows, b_rows, 10]);
        let da = dim("da", "a", a_rows, a_dv);
        let db = dim("db", "b", b_rows, b_dv);
        let frame = build_query(kind, &f, &da, &db);
        for backend in [Backend::Auto, Backend::Bat, Backend::Dense] {
            // within one backend the kernel numerics are fixed, so the
            // reordered plan must reproduce the written order's bag exactly
            let baseline = frame.collect(&ctx(backend, 1, false));
            for threads in [1usize, 4] {
                let reordered = frame.collect(&ctx(backend, threads, true));
                match (&baseline, &reordered) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.schema(), b.schema(),
                            "schema mismatch kind={} backend={:?} threads={}",
                            kind, backend, threads);
                        prop_assert!(a.bag_equals(b),
                            "row mismatch kind={} backend={:?} threads={}",
                            kind, backend, threads);
                    }
                    (Err(_), Err(_)) => {} // both reject identically
                    (a, b) => prop_assert!(false,
                        "divergence kind={} backend={:?} threads={}: baseline_ok={} reordered_ok={}",
                        kind, backend, threads, a.is_ok(), b.is_ok()),
                }
            }
        }
    }
}
