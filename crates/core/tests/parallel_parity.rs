//! Property test: parallel/serial parity. For randomly generated relations
//! and plan shapes, executing at `threads ∈ {2, 4}` produces *exactly* the
//! relation the serial interpreter (`threads = 1`) produces — same rows,
//! same order — across the Auto/Bat/Dense backends. Morsels are contiguous
//! row ranges reassembled in range order, so even row order must survive.
//!
//! Float columns hold small integer values: integer-valued f64 sums are
//! exact under any association, so the parallel aggregation's partial-sum
//! merge is bitwise-identical to the serial left-to-right accumulation.

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::{Backend, RmaContext, RmaOptions};
use rma_relation::{AggFunc, AggSpec, Expr, Relation, RelationBuilder};

/// A relation with a distinct shuffled int key `k` (usable as an RMA order
/// schema), a small grouping column `g`, and two integer-valued float
/// application columns.
fn gen_rel(rows: usize, rng: &mut TestRng) -> Relation {
    let mut keys: Vec<i64> = (0..rows as i64).collect();
    for i in (1..rows).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        keys.swap(i, j);
    }
    let g: Vec<i64> = (0..rows).map(|_| (rng.next_u64() % 7) as i64).collect();
    let x: Vec<f64> = (0..rows)
        .map(|_| (rng.next_u64() % 17) as f64 - 8.0)
        .collect();
    let y: Vec<f64> = (0..rows)
        .map(|_| (rng.next_u64() % 11) as f64 - 5.0)
        .collect();
    RelationBuilder::new()
        .name("r")
        .column("k", keys)
        .column("g", g)
        .column("x", x)
        .column("y", y)
        .build()
        .expect("valid relation")
}

/// A small build-side relation for joins, keyed (with duplicates) on `g2`
/// and carrying a payload column.
fn gen_side(rng: &mut TestRng) -> Relation {
    let rows = 20 + (rng.next_u64() % 20) as usize;
    let g2: Vec<i64> = (0..rows).map(|_| (rng.next_u64() % 9) as i64).collect();
    let w: Vec<f64> = (0..rows).map(|_| (rng.next_u64() % 13) as f64).collect();
    RelationBuilder::new()
        .column("g2", g2)
        .column("w", w)
        .build()
        .expect("valid relation")
}

/// Build one of the plan shapes the parallel engine handles: the fused
/// scan→select→project pipeline, parallel aggregation, partitioned hash
/// joins, an RMA operation over parallel-produced input, and the top-k
/// rewrite.
fn build_frame(kind: usize, r: &Relation, s: &Relation) -> Frame {
    let scan = Frame::scan(r.clone());
    match kind {
        0 => scan
            .select(
                Expr::col("x")
                    .gt(Expr::lit(0.0))
                    .and(Expr::col("g").lt(Expr::lit(5i64))),
            )
            .project(&["k", "x"]),
        1 => scan.select(Expr::col("k").gt(Expr::lit(10i64))).aggregate(
            &["g"],
            vec![
                AggSpec::count_star("n"),
                AggSpec::sum("x", "sx"),
                AggSpec::avg("x", "ax"),
                AggSpec::new(AggFunc::Min, Some("y"), "lo"),
                AggSpec::new(AggFunc::Max, Some("y"), "hi"),
            ],
        ),
        2 => scan
            .join(Frame::scan(s.clone()), &[("g", "g2")])
            .select(Expr::col("w").gt_eq(Expr::lit(3.0))),
        3 => scan.select(Expr::col("x").gt(Expr::lit(-5.0))).qqr(&["k"]),
        4 => {
            // natural join on the shared `g` column
            let renamed = rma_relation::rename(s, &[("g2", "g")]).expect("rename");
            scan.natural_join(Frame::scan(renamed))
        }
        _ => scan.order_by(&["x", "k"], &[true, false]).limit(7),
    }
}

fn backends() -> [Backend; 3] {
    [Backend::Auto, Backend::Bat, Backend::Dense]
}

fn ctx(backend: Backend, threads: usize) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend,
        threads,
        ..RmaOptions::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn parallel_execution_equals_serial(
        (rows, kind) in (600usize..2600, 0usize..6),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed_u64(seed);
        let r = gen_rel(rows, &mut rng);
        let s = gen_side(&mut rng);
        let frame = build_frame(kind, &r, &s);
        for backend in backends() {
            let serial = frame.collect(&ctx(backend, 1));
            for threads in [2usize, 4] {
                let parallel = frame.collect(&ctx(backend, threads));
                match (&serial, &parallel) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a, b,
                        "mismatch kind={} backend={:?} threads={}",
                        kind, backend, threads
                    ),
                    (Err(_), Err(_)) => {} // both reject identically-shaped input
                    (a, b) => prop_assert!(
                        false,
                        "divergence kind={} backend={:?} threads={}: serial_ok={} parallel_ok={}",
                        kind, backend, threads, a.is_ok(), b.is_ok()
                    ),
                }
            }
        }
    }
}

/// Deterministic (non-property) spot checks: a relation large enough that
/// every morsel is non-trivial, and the empty relation.
#[test]
fn parallel_pipeline_deterministic_cases() {
    let mut rng = TestRng::from_seed_u64(7);
    let r = gen_rel(1500, &mut rng);
    let s = gen_side(&mut rng);
    for kind in 0..6 {
        let frame = build_frame(kind, &r, &s);
        let serial = frame.collect(&ctx(Backend::Auto, 1)).expect("serial");
        for threads in [2, 4, 8] {
            let parallel = frame
                .collect(&ctx(Backend::Auto, threads))
                .expect("parallel");
            assert_eq!(serial, parallel, "kind={kind} threads={threads}");
        }
    }
}

#[test]
fn parallel_execution_of_empty_relation() {
    let empty = RelationBuilder::new()
        .column("k", Vec::<i64>::new())
        .column("g", Vec::<i64>::new())
        .column("x", Vec::<f64>::new())
        .column("y", Vec::<f64>::new())
        .build()
        .unwrap();
    let frame = Frame::scan(empty)
        .select(Expr::col("x").gt(Expr::lit(0.0)))
        .aggregate(&["g"], vec![AggSpec::count_star("n")]);
    let a = frame.collect(&ctx(Backend::Auto, 1)).unwrap();
    let b = frame.collect(&ctx(Backend::Auto, 4)).unwrap();
    assert_eq!(a, b);
    assert!(a.is_empty());
}
