//! Concurrency tests of the serving layer: snapshot isolation under
//! concurrent appenders, the first-committer-wins protocol, and budgeted
//! sessions sharing one pool.
//!
//! The isolation invariant exploited here: committed generations form a
//! chain in which every generation is a row-prefix of the final table
//! (appends only ever extend). So a reader that aggregates `(COUNT, SUM)`
//! must observe exactly the first `COUNT` rows of the final row order —
//! any torn read (rows from a half-installed generation, or a mix of two
//! generations) produces a `(COUNT, SUM)` pair matching no prefix.

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::serve::{ServeError, Server, Session};
use rma_relation::Relation;
use rma_relation::{AggSpec, RelationBuilder, SessionTicket};
use rma_storage::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

fn rel(xs: Vec<i64>) -> Relation {
    RelationBuilder::new().column("x", xs).build().unwrap()
}

/// One aggregate query over a fresh pin: (row count, sum of `x`).
fn count_sum(s: &Session) -> (i64, i64) {
    let r = s
        .query(
            Frame::table("t")
                .aggregate(&[], vec![AggSpec::count_star("n"), AggSpec::sum("x", "s")]),
        )
        .unwrap();
    let n = match r.column("n").unwrap().get(0) {
        Value::Int(v) => v,
        other => panic!("unexpected count {other:?}"),
    };
    let sum = match r.column("s").unwrap().get(0) {
        Value::Int(v) => v,
        Value::Null => 0,
        other => panic!("unexpected sum {other:?}"),
    };
    (n, sum)
}

/// Run `appenders.len()` appender sessions (each committing its batches in
/// order through the optimistic insert loop) against two reader sessions
/// issuing aggregate queries the whole time, then check every observed
/// aggregate against the prefix sums of the final committed row order.
fn run_stress(appenders: &[Vec<Vec<i64>>]) {
    let server = Server::default();
    let admin = server.session();
    admin.create_table("t", rel(vec![])).unwrap();
    let done = AtomicBool::new(false);
    let observed: Mutex<Vec<(i64, i64)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let writers: Vec<_> = appenders
            .iter()
            .map(|batches| {
                let session = server.session();
                scope.spawn(move || {
                    for batch in batches {
                        session.insert("t", &rel(batch.clone())).unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..2 {
            let session = server.session();
            let done = &done;
            let observed = &observed;
            scope.spawn(move || {
                let mut local = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    local.push(count_sum(&session));
                }
                // one read guaranteed to see the final generation
                local.push(count_sum(&session));
                observed.lock().unwrap().extend(local);
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    // reconstruct the commit chain from the final row order
    let total: usize = appenders.iter().flatten().map(Vec::len).sum();
    let finale = admin.query(Frame::table("t")).unwrap();
    assert_eq!(finale.len(), total, "every committed row landed");
    let col = finale.column("x").unwrap();
    let mut prefix_sums = vec![0i64];
    for i in 0..finale.len() {
        let Value::Int(v) = col.get(i) else {
            panic!("non-int row");
        };
        prefix_sums.push(prefix_sums[i] + v);
    }
    for (n, sum) in observed.lock().unwrap().iter() {
        let n = *n as usize;
        assert!(n <= total, "reader saw {n} rows of {total}");
        assert_eq!(
            *sum, prefix_sums[n],
            "aggregate ({n}, {sum}) matches no committed generation"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot isolation: with N concurrent appenders, every reader
    /// aggregate equals some committed generation's aggregate.
    #[test]
    fn reader_aggregates_match_some_committed_generation(
        appenders in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(1i64..1_000, 1..4),
                1..8,
            ),
            2..4,
        )
    ) {
        run_stress(&appenders);
    }
}

/// First committer wins at the session level: two sessions pin the same
/// generation; the first commit installs, the second gets a conflict that
/// names both tokens, and the retrying [`Session::insert`] path lands it.
#[test]
fn stale_commit_conflicts_then_retry_lands() {
    let server = Server::default();
    let a = server.session();
    let b = server.session();
    a.create_table("t", rel(vec![1])).unwrap();

    let pin_a = a.pin();
    let pin_b = b.pin();
    let base_a = pin_a.get("t").unwrap();
    let base_b = pin_b.get("t").unwrap();
    assert_eq!(base_a.generation(), base_b.generation());

    let next_a = base_a.relation().appended(&rel(vec![2])).unwrap();
    let next_b = base_b.relation().appended(&rel(vec![3])).unwrap();
    server
        .catalog()
        .commit("t", base_a.generation(), next_a)
        .unwrap();
    let err = server
        .catalog()
        .commit("t", base_b.generation(), next_b)
        .unwrap_err();
    match err {
        ServeError::WriteConflict {
            expected, found, ..
        } => {
            assert_eq!(expected, base_b.generation());
            assert!(found > expected);
        }
        other => panic!("expected a write conflict, got {other}"),
    }
    // the session-level insert retries past the conflict transparently
    b.insert("t", &rel(vec![3])).unwrap();
    assert_eq!(count_sum(&b), (3, 6));
}

/// Seat-budgeted sessions issue parallel-sized queries concurrently and
/// all complete with correct results; tickets are per session.
#[test]
fn budgeted_sessions_query_concurrently() {
    let server = Server::default();
    let admin = server.session();
    let n = 20_000i64;
    admin.create_table("t", rel((0..n).collect())).unwrap();
    let expect = n * (n - 1) / 2;
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let session = server.session_with_budget(1);
            scope.spawn(move || {
                for _ in 0..10 {
                    assert_eq!(count_sum(&session), (n, expect));
                }
            });
        }
    });
    // a fresh unrelated ticket is untouched by the sessions' scheduling
    assert_eq!(SessionTicket::new(2).pass(), 0);
}
