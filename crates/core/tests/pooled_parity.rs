//! Property test: pooled execution parity. Every operator that enlists the
//! worker pool — parallel sort, top-k (the Limit-into-Sort rewrite), hash
//! joins, and aggregation — produces *exactly* the serial interpreter's
//! relation (same rows, same order) at `threads ∈ {1, 2, 4}` across the
//! Auto/Bat/Dense backends, including null-heavy and pre-sorted inputs.
//!
//! The pool makes this non-trivial in a new way: morsel jobs now run on
//! long-lived parked workers instead of fresh scoped threads, and sort adds
//! per-worker local runs + a k-way merge whose tie-breaking must reproduce
//! the serial stable sort bit for bit.
//!
//! Float columns hold small integer values so parallel partial-sum merges
//! are exact (same contract as the earlier parity suites).

use proptest::prelude::*;
use rma_core::plan::Frame;
use rma_core::{Backend, RmaContext, RmaOptions};
use rma_relation::{AggFunc, AggSpec, Expr, Relation, RelationBuilder};
use rma_storage::{Column, DataType, Value};

/// Input shapes the sort paths care about: shuffled, already sorted,
/// reverse-sorted, and heavily duplicated keys.
#[derive(Debug, Clone, Copy)]
enum KeyShape {
    Shuffled,
    PreSorted,
    Reversed,
    FewDistinct,
}

const KEY_SHAPES: [KeyShape; 4] = [
    KeyShape::Shuffled,
    KeyShape::PreSorted,
    KeyShape::Reversed,
    KeyShape::FewDistinct,
];

/// A relation with a sort key `s` of the given shape, a nullable
/// integer-valued float `x` (~30% nulls), a nullable grouping column `g`,
/// and a distinct row id for order-sensitive assertions.
fn gen_rel(rows: usize, shape: KeyShape, rng: &mut TestRng) -> Relation {
    let s: Vec<i64> = match shape {
        KeyShape::Shuffled => {
            let mut keys: Vec<i64> = (0..rows as i64).collect();
            for i in (1..rows).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                keys.swap(i, j);
            }
            keys
        }
        KeyShape::PreSorted => (0..rows as i64).collect(),
        KeyShape::Reversed => (0..rows as i64).rev().collect(),
        KeyShape::FewDistinct => (0..rows).map(|_| (rng.next_u64() % 5) as i64).collect(),
    };
    let x: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 3 {
                Value::Null
            } else {
                Value::Float((rng.next_u64() % 17) as f64 - 8.0)
            }
        })
        .collect();
    let g: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 3 {
                Value::Null
            } else {
                Value::Int((rng.next_u64() % 7) as i64)
            }
        })
        .collect();
    let id: Vec<i64> = (0..rows as i64).collect();
    RelationBuilder::new()
        .name("r")
        .column("s", s)
        .column(
            "x",
            Column::from_values_typed(DataType::Float, &x).expect("x column"),
        )
        .column(
            "g",
            Column::from_values_typed(DataType::Int, &g).expect("g column"),
        )
        .column("id", id)
        .build()
        .expect("valid relation")
}

/// A small join side keyed (with duplicates and some nulls) on `g2`.
fn gen_side(rng: &mut TestRng) -> Relation {
    let rows = 15 + (rng.next_u64() % 25) as usize;
    let g2: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.next_u64() % 10 < 2 {
                Value::Null
            } else {
                Value::Int((rng.next_u64() % 8) as i64)
            }
        })
        .collect();
    let w: Vec<f64> = (0..rows).map(|_| (rng.next_u64() % 13) as f64).collect();
    RelationBuilder::new()
        .column(
            "g2",
            Column::from_values_typed(DataType::Int, &g2).expect("g2 column"),
        )
        .column("w", w)
        .build()
        .expect("valid relation")
}

/// Plan shapes: full sort (multi-key, mixed directions, nullable keys),
/// top-k via the Limit-into-Sort rewrite, sort over a join, and sorted
/// aggregation output — everything the pooled operators cover.
fn build_frame(kind: usize, r: &Relation, side: &Relation) -> Frame {
    let scan = Frame::scan(r.clone());
    match kind {
        0 => scan.order_by(&["s"], &[true]),
        1 => scan.order_by(&["x", "s"], &[true, false]),
        2 => scan.order_by(&["g", "x", "id"], &[false, true, true]),
        3 => scan.order_by(&["s", "x"], &[true, false]).limit(11),
        4 => scan
            .select(Expr::col("s").gt(Expr::lit(2i64)))
            .order_by(&["x", "id"], &[true, true])
            .limit(40),
        5 => scan
            .join(Frame::scan(side.clone()), &[("g", "g2")])
            .order_by(&["w", "id"], &[false, true]),
        _ => scan
            .aggregate(
                &["g"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::sum("x", "sx"),
                    AggSpec::new(AggFunc::Min, Some("x"), "lo"),
                ],
            )
            .order_by(&["n", "g"], &[false, true]),
    }
}

fn ctx(backend: Backend, threads: usize) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend,
        threads,
        ..RmaOptions::default()
    })
}

fn backends() -> [Backend; 3] {
    [Backend::Auto, Backend::Bat, Backend::Dense]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pooled_execution_equals_serial(
        (rows, kind, shape_idx) in (1100usize..3000, 0usize..7, 0usize..4),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed_u64(seed);
        let r = gen_rel(rows, KEY_SHAPES[shape_idx], &mut rng);
        let side = gen_side(&mut rng);
        let frame = build_frame(kind, &r, &side);
        for backend in backends() {
            let serial = frame.collect(&ctx(backend, 1)).expect("serial execution");
            for threads in [2usize, 4] {
                let pooled = frame
                    .collect(&ctx(backend, threads))
                    .expect("pooled execution");
                prop_assert_eq!(
                    &serial, &pooled,
                    "mismatch kind={} shape={:?} backend={:?} threads={}",
                    kind, KEY_SHAPES[shape_idx], backend, threads
                );
            }
        }
    }
}

/// Deterministic spot checks on the shapes proptest shrinks past: exact
/// boundary sizes and all-duplicate keys.
#[test]
fn pooled_sort_deterministic_cases() {
    let mut rng = TestRng::from_seed_u64(11);
    for shape in KEY_SHAPES {
        let r = gen_rel(2048, shape, &mut rng);
        let side = gen_side(&mut rng);
        for kind in 0..7 {
            let frame = build_frame(kind, &r, &side);
            let serial = frame.collect(&ctx(Backend::Auto, 1)).expect("serial");
            for threads in [2, 4, 8] {
                let pooled = frame.collect(&ctx(Backend::Auto, threads)).expect("pooled");
                assert_eq!(
                    serial, pooled,
                    "kind={kind} shape={shape:?} threads={threads}"
                );
            }
        }
    }
}

/// The pooled sort of an empty relation and of a single row degrade
/// gracefully through the serial fallback.
#[test]
fn pooled_sort_tiny_inputs() {
    for rows in [0usize, 1, 17] {
        let mut rng = TestRng::from_seed_u64(5);
        let r = gen_rel(rows, KeyShape::Shuffled, &mut rng);
        let frame = Frame::scan(r)
            .order_by(&["s", "x"], &[true, false])
            .limit(3);
        let serial = frame.collect(&ctx(Backend::Auto, 1)).expect("serial");
        let pooled = frame.collect(&ctx(Backend::Auto, 4)).expect("pooled");
        assert_eq!(serial, pooled, "rows={rows}");
    }
}
