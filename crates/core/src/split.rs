//! Splitting, sorting, and the matrix/relation constructors (§4.1, §7.2).
//!
//! A relational matrix operation splits its argument into order part and
//! application part (the paper's Algorithm 1 lines 2–4): the order schema
//! `U` is validated as a key, the tuples are ordered by `U`, the order
//! columns are gathered in that order, and the application columns are
//! gathered into `f64` vectors — the matrix constructor `µ`. The relation
//! constructor `γ` reassembles row-context columns and base-result columns
//! into the result relation.

use crate::context::{RmaContext, SortPolicy};
use crate::error::RmaError;
use rma_relation::algebra::is_key_hash;
use rma_relation::{Attribute, Relation, Schema};
use rma_storage::{invert_permutation, is_identity_permutation, Column, ColumnData, StorageError};

/// The split of one argument relation: contextual information plus the
/// application part as `f64` columns, both in operation order.
#[derive(Debug)]
pub struct Split {
    /// Order-schema attribute metadata, in the order given by the caller.
    pub order_attrs: Vec<Attribute>,
    /// Application-schema attribute names, in schema order.
    pub app_names: Vec<String>,
    /// Order part `r.U`, gathered in operation order.
    pub order_cols: Vec<Column>,
    /// Application part `µ_{U̅}(r)`: one `f64` vector per application
    /// attribute, rows in operation order.
    pub app: Vec<Vec<f64>>,
    /// Number of tuples.
    pub rows: usize,
    /// The sort permutation actually applied (`None` = physical order kept).
    pub perm: Option<Vec<usize>>,
}

/// How the split orders tuples.
#[derive(Debug, Clone)]
pub enum SortMode {
    /// Materialise the sort by the order schema.
    Full,
    /// Keep physical order (valid when the operation's result does not
    /// depend on row order).
    Skip,
    /// Align to another relation's row order: row `i` of this split matches
    /// row `i` of the relation that produced `align_ranks` (the paper's
    /// "relative sorting" for element-wise operations).
    AlignTo {
        /// `ranks[i]` = sorted position of the *other* relation's physical
        /// row `i` under its own order schema.
        ranks: Vec<usize>,
    },
}

/// Validate the order schema and split the relation (Algorithm 1 lines 1–7).
pub fn split(
    ctx: &RmaContext,
    r: &Relation,
    order: &[&str],
    mode: SortMode,
) -> Result<Split, RmaError> {
    // resolve schemas
    let order_schema = r.schema().subset(order)?;
    let app_schema = r.schema().complement(order);
    if app_schema.is_empty() {
        return Err(RmaError::EmptyApplication);
    }
    for a in app_schema.attributes() {
        if !a.dtype().is_numeric() {
            return Err(RmaError::NonNumericApplication {
                attribute: a.name().to_string(),
            });
        }
    }
    // key validation: hash-based so that sort-avoiding operations do not
    // pay a sort here
    if ctx.options.validate_keys {
        let cols = r.columns_of(order)?;
        if order.is_empty() {
            if r.len() > 1 {
                return Err(RmaError::OrderSchemaNotKey(vec![]));
            }
        } else if !is_key_hash(&cols) {
            return Err(RmaError::OrderSchemaNotKey(
                order.iter().map(|s| s.to_string()).collect(),
            ));
        }
    }
    // establish operation order; identity permutations (already-sorted
    // data) skip the gather entirely, like MonetDB's sortedness property
    let perm: Option<Vec<usize>> = match mode {
        SortMode::Full => Some(r.sort_permutation_by(order)?),
        SortMode::Skip => None,
        SortMode::AlignTo { ranks } => {
            // this relation sorted by its own keys, then re-ordered so that
            // row i matches the other relation's physical row i
            let own_sorted = r.sort_permutation_by(order)?;
            Some(ranks.iter().map(|&rank| own_sorted[rank]).collect())
        }
    };
    let perm = perm.filter(|p| !is_identity_permutation(p));
    // gather order part
    let order_cols: Vec<Column> = match &perm {
        Some(p) => order
            .iter()
            .map(|n| Ok(r.column(n)?.take(p)))
            .collect::<Result<_, RmaError>>()?,
        None => order
            .iter()
            .map(|n| Ok(r.column(n)?.clone()))
            .collect::<Result<_, RmaError>>()?,
    };
    // gather application part as f64 columns (matrix constructor µ)
    let app: Vec<Vec<f64>> = app_schema
        .names()
        .map(|n| gather_f64(r.column(n)?, perm.as_deref(), n))
        .collect::<Result<_, _>>()?;
    Ok(Split {
        order_attrs: order_schema.attributes().to_vec(),
        app_names: app_schema.names().map(str::to_string).collect(),
        order_cols,
        app,
        rows: r.len(),
        perm,
    })
}

/// Decide the sort mode for a unary operation under the context's policy.
pub fn unary_sort_mode(ctx: &RmaContext, op: crate::shape::RmaOp) -> SortMode {
    match ctx.options.sort_policy {
        SortPolicy::Always => SortMode::Full,
        SortPolicy::Optimized => {
            if op.result_depends_on_row_order() {
                SortMode::Full
            } else {
                SortMode::Skip
            }
        }
    }
}

/// For aligned binary operations: ranks of the first relation's physical
/// rows under its order schema (`ranks[i]` = sorted position of row `i`).
pub fn alignment_ranks(r: &Relation, order: &[&str]) -> Result<Vec<usize>, RmaError> {
    let perm = r.sort_permutation_by(order)?;
    Ok(invert_permutation(&perm))
}

/// Gather one column as `f64` in the given order, widening integers and
/// rejecting nulls and non-numeric types.
fn gather_f64(col: &Column, perm: Option<&[usize]>, name: &str) -> Result<Vec<f64>, RmaError> {
    if col.null_count() > 0 {
        return Err(RmaError::Storage(StorageError::NullInNumericContext));
    }
    let out = match (col.data(), perm) {
        (ColumnData::Float(v), None) => v.clone(),
        (ColumnData::Float(v), Some(p)) => p.iter().map(|&i| v[i]).collect(),
        (ColumnData::Int(v), None) => v.iter().map(|&x| x as f64).collect(),
        (ColumnData::Int(v), Some(p)) => p.iter().map(|&i| v[i] as f64).collect(),
        _ => {
            return Err(RmaError::NonNumericApplication {
                attribute: name.to_string(),
            })
        }
    };
    Ok(out)
}

/// The schema cast `∆U`: a string column holding attribute names (becomes
/// the values of the `C` column for shape-`c1` row origins).
pub fn schema_cast(names: &[String]) -> Column {
    Column::new(ColumnData::Str(names.to_vec()))
}

/// The column cast `▽U`: attribute *names* generated from the values of a
/// single (sorted, key) order column.
pub fn column_cast(col: &Column) -> Result<Vec<String>, RmaError> {
    let mut names = Vec::with_capacity(col.len());
    for v in col.iter_values() {
        let name = v.to_string();
        if name.is_empty() {
            return Err(RmaError::BadOriginName(name));
        }
        names.push(name);
    }
    Ok(names)
}

/// The relation constructor `γ`: assemble row-context columns and base
/// result columns (named `f64` vectors) into a relation.
pub fn build_relation(
    context_cols: Vec<(Attribute, Column)>,
    result_names: &[String],
    result_cols: Vec<Vec<f64>>,
) -> Result<Relation, RmaError> {
    debug_assert_eq!(result_names.len(), result_cols.len());
    let mut attrs: Vec<Attribute> = Vec::with_capacity(context_cols.len() + result_cols.len());
    let mut columns: Vec<Column> = Vec::with_capacity(attrs.capacity());
    for (a, c) in context_cols {
        attrs.push(a);
        columns.push(c);
    }
    for (name, col) in result_names.iter().zip(result_cols) {
        attrs.push(Attribute::new(name.clone(), rma_storage::DataType::Float));
        columns.push(Column::new(ColumnData::Float(col)));
    }
    let schema = Schema::new(attrs)?;
    Ok(Relation::new(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::RmaOp;
    use rma_relation::RelationBuilder;
    use rma_storage::Value;

    fn weather() -> Relation {
        RelationBuilder::new()
            .name("r")
            .column("T", vec!["5am", "8am", "7am", "6am"])
            .column("H", vec![1.0f64, 8.0, 6.0, 1.0])
            .column("W", vec![3.0f64, 5.0, 7.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn full_sort_gathers_in_key_order() {
        let ctx = RmaContext::default();
        let s = split(&ctx, &weather(), &["T"], SortMode::Full).unwrap();
        assert_eq!(s.app_names, vec!["H", "W"]);
        assert_eq!(s.app[0], vec![1.0, 1.0, 6.0, 8.0]); // H sorted by T
        assert_eq!(s.app[1], vec![3.0, 4.0, 7.0, 5.0]); // W sorted by T
        assert_eq!(s.order_cols[0].get(0), Value::from("5am"));
        assert!(s.perm.is_some());
    }

    #[test]
    fn skip_keeps_physical_order() {
        let ctx = RmaContext::default();
        let s = split(&ctx, &weather(), &["T"], SortMode::Skip).unwrap();
        assert_eq!(s.app[0], vec![1.0, 8.0, 6.0, 1.0]);
        assert!(s.perm.is_none());
    }

    #[test]
    fn align_to_matches_other_relation() {
        // s has the same keys in a different physical order; aligning s to
        // r's physical order must pair equal keys.
        let ctx = RmaContext::default();
        let r = weather();
        let s_rel = RelationBuilder::new()
            .column("T2", vec!["6am", "5am", "8am", "7am"])
            .column("X", vec![60.0f64, 50.0, 80.0, 70.0])
            .build()
            .unwrap();
        let ranks = alignment_ranks(&r, &["T"]).unwrap();
        let s = split(&ctx, &s_rel, &["T2"], SortMode::AlignTo { ranks }).unwrap();
        // r physical order: 5am, 8am, 7am, 6am → aligned X: 50, 80, 70, 60
        assert_eq!(s.app[0], vec![50.0, 80.0, 70.0, 60.0]);
        let t2: Vec<Value> = s.order_cols[0].iter_values().collect();
        assert_eq!(
            t2,
            vec![
                Value::from("5am"),
                Value::from("8am"),
                Value::from("7am"),
                Value::from("6am")
            ]
        );
    }

    #[test]
    fn key_violation_detected() {
        let ctx = RmaContext::default();
        let r = RelationBuilder::new()
            .column("k", vec![1i64, 1])
            .column("x", vec![1.0f64, 2.0])
            .build()
            .unwrap();
        assert!(matches!(
            split(&ctx, &r, &["k"], SortMode::Full),
            Err(RmaError::OrderSchemaNotKey(_))
        ));
    }

    #[test]
    fn key_validation_can_be_disabled() {
        let ctx = RmaContext::new(crate::context::RmaOptions {
            validate_keys: false,
            ..Default::default()
        });
        let r = RelationBuilder::new()
            .column("k", vec![1i64, 1])
            .column("x", vec![1.0f64, 2.0])
            .build()
            .unwrap();
        assert!(split(&ctx, &r, &["k"], SortMode::Skip).is_ok());
    }

    #[test]
    fn non_numeric_application_rejected() {
        let ctx = RmaContext::default();
        let r = RelationBuilder::new()
            .column("k", vec![1i64, 2])
            .column("s", vec!["a", "b"])
            .build()
            .unwrap();
        assert!(matches!(
            split(&ctx, &r, &["k"], SortMode::Full),
            Err(RmaError::NonNumericApplication { .. })
        ));
    }

    #[test]
    fn empty_application_rejected() {
        let ctx = RmaContext::default();
        let r = RelationBuilder::new()
            .column("k", vec![1i64, 2])
            .build()
            .unwrap();
        assert!(matches!(
            split(&ctx, &r, &["k"], SortMode::Full),
            Err(RmaError::EmptyApplication)
        ));
    }

    #[test]
    fn int_application_widens() {
        let ctx = RmaContext::default();
        let r = RelationBuilder::new()
            .column("k", vec![2i64, 1])
            .column("x", vec![20i64, 10])
            .build()
            .unwrap();
        let s = split(&ctx, &r, &["k"], SortMode::Full).unwrap();
        assert_eq!(s.app[0], vec![10.0, 20.0]);
    }

    #[test]
    fn unary_sort_modes_follow_policy() {
        let ctx = RmaContext::default();
        assert!(matches!(unary_sort_mode(&ctx, RmaOp::Qqr), SortMode::Skip));
        assert!(matches!(unary_sort_mode(&ctx, RmaOp::Inv), SortMode::Full));
        let always = RmaContext::new(crate::context::RmaOptions {
            sort_policy: SortPolicy::Always,
            ..Default::default()
        });
        assert!(matches!(
            unary_sort_mode(&always, RmaOp::Qqr),
            SortMode::Full
        ));
    }

    #[test]
    fn casts() {
        let col = Column::from(vec!["5am", "6am"]);
        assert_eq!(column_cast(&col).unwrap(), vec!["5am", "6am"]);
        let names = schema_cast(&["H".to_string(), "W".to_string()]);
        assert_eq!(names.get(1), Value::from("W"));
        let empty = Column::from(vec![""]);
        assert!(matches!(
            column_cast(&empty),
            Err(RmaError::BadOriginName(_))
        ));
    }

    #[test]
    fn build_relation_gamma() {
        let ctx_cols = vec![(
            Attribute::new("T", rma_storage::DataType::Str),
            Column::from(vec!["7am", "8am"]),
        )];
        let rel = build_relation(
            ctx_cols,
            &["H".to_string(), "W".to_string()],
            vec![vec![-0.19, 0.31], vec![0.27, -0.23]],
        )
        .unwrap();
        assert_eq!(rel.len(), 2);
        let names: Vec<_> = rel.schema().names().collect();
        assert_eq!(names, vec!["T", "H", "W"]);
    }

    #[test]
    fn build_relation_rejects_duplicate_names() {
        let ctx_cols = vec![(
            Attribute::new("H", rma_storage::DataType::Str),
            Column::from(vec!["x"]),
        )];
        assert!(build_relation(ctx_cols, &["H".to_string()], vec![vec![1.0]]).is_err());
    }
}
