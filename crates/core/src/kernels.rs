//! Base-result computation: dispatch to the BAT or dense kernels (§7.3).
//!
//! The dense path times the BAT→contiguous copy, the kernel, and the copy
//! back separately, so the Fig. 14 transformation-share experiment can read
//! the exact split from [`ExecStats`].

use crate::context::{Backend, ExecStats, KernelUsed, RmaContext};
use crate::error::RmaError;
use crate::shape::RmaOp;
use rma_linalg::bat;
use rma_linalg::dense::{self, Matrix};
use std::time::Instant;

/// Base result of a kernel invocation.
#[derive(Debug)]
pub enum KernelOut {
    /// Column vectors of the result matrix.
    Cols(Vec<Vec<f64>>),
    /// A scalar (det, rnk).
    Scalar(f64),
}

impl KernelOut {
    /// The result as columns; a scalar becomes a single 1×1 column.
    pub fn into_cols(self) -> Vec<Vec<f64>> {
        match self {
            KernelOut::Cols(c) => c,
            KernelOut::Scalar(s) => vec![vec![s]],
        }
    }
}

/// Does the BAT kernel family implement this operation?
pub fn bat_supports(op: RmaOp) -> bool {
    !matches!(
        op,
        RmaOp::Dsv | RmaOp::Usv | RmaOp::Vsv | RmaOp::Evl | RmaOp::Evc
    )
}

/// Execute a unary base operation on an application part.
pub fn eval_unary(
    ctx: &RmaContext,
    op: RmaOp,
    app: &[Vec<f64>],
    stats: &mut ExecStats,
) -> Result<KernelOut, RmaError> {
    let m = app.first().map_or(0, Vec::len);
    let n = app.len();
    let mut backend = ctx.choose_kernel(op, m, n, None);
    let mut kernel_used = match backend {
        Backend::Bat => KernelUsed::Bat,
        _ => KernelUsed::Dense,
    };
    if backend == Backend::Bat && !bat_supports(op) {
        backend = Backend::Dense;
        kernel_used = KernelUsed::DenseFallback;
    }
    let out = match backend {
        Backend::Bat => {
            let t = Instant::now();
            let out = bat_unary(op, app)?;
            stats.compute += t.elapsed();
            out
        }
        _ => {
            let t = Instant::now();
            let dense_in = Matrix::from_columns(app)?;
            stats.copy_in += t.elapsed();
            let t = Instant::now();
            let out = dense_unary(op, &dense_in)?;
            stats.compute += t.elapsed();
            let t = Instant::now();
            let out = match out {
                DenseOut::Matrix(mx) => KernelOut::Cols(mx.into_columns()),
                DenseOut::Vector(v) => KernelOut::Cols(vec![v]),
                DenseOut::Scalar(s) => KernelOut::Scalar(s),
            };
            stats.copy_out += t.elapsed();
            out
        }
    };
    stats.ops_run += 1;
    stats.last_kernel = Some(kernel_used);
    Ok(out)
}

/// Execute a binary base operation.
pub fn eval_binary(
    ctx: &RmaContext,
    op: RmaOp,
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    stats: &mut ExecStats,
) -> Result<KernelOut, RmaError> {
    let m = a.first().map_or(0, Vec::len);
    let n = a.len();
    let second = (b.first().map_or(0, Vec::len), b.len());
    let backend = ctx.choose_kernel(op, m, n, Some(second));
    let out = match backend {
        Backend::Bat => {
            let t = Instant::now();
            let out = bat_binary(op, a, b)?;
            stats.compute += t.elapsed();
            stats.last_kernel = Some(KernelUsed::Bat);
            out
        }
        _ => {
            let t = Instant::now();
            let ma = Matrix::from_columns(a)?;
            let mb = Matrix::from_columns(b)?;
            stats.copy_in += t.elapsed();
            let t = Instant::now();
            let out = dense_binary(op, &ma, &mb)?;
            stats.compute += t.elapsed();
            let t = Instant::now();
            let out = KernelOut::Cols(out.into_columns());
            stats.copy_out += t.elapsed();
            stats.last_kernel = Some(KernelUsed::Dense);
            out
        }
    };
    stats.ops_run += 1;
    Ok(out)
}

fn bat_unary(op: RmaOp, app: &[Vec<f64>]) -> Result<KernelOut, RmaError> {
    let out = match op {
        RmaOp::Inv => KernelOut::Cols(bat::inv(app)?),
        RmaOp::Qqr => KernelOut::Cols(bat::qqr(app)?),
        RmaOp::Rqr => KernelOut::Cols(bat::rqr(app)?),
        RmaOp::Tra => KernelOut::Cols(bat::tra(app)?),
        RmaOp::Chf => KernelOut::Cols(bat::chf(app)?),
        RmaOp::Det => KernelOut::Scalar(bat::det(app)?),
        RmaOp::Rnk => KernelOut::Scalar(bat::rnk(app)? as f64),
        other => unreachable!("bat_unary called for unsupported op {other:?}"),
    };
    Ok(out)
}

enum DenseOut {
    Matrix(Matrix),
    Vector(Vec<f64>),
    Scalar(f64),
}

fn dense_unary(op: RmaOp, a: &Matrix) -> Result<DenseOut, RmaError> {
    let out = match op {
        RmaOp::Inv => DenseOut::Matrix(dense::inverse(a)?),
        RmaOp::Qqr => DenseOut::Matrix(dense::qr(a)?.q),
        RmaOp::Rqr => DenseOut::Matrix(dense::qr(a)?.r),
        RmaOp::Tra => DenseOut::Matrix(a.transpose()),
        RmaOp::Chf => DenseOut::Matrix(dense::cholesky(a)?),
        RmaOp::Det => DenseOut::Scalar(dense::det(a)?),
        RmaOp::Rnk => DenseOut::Scalar(dense::rank(a)? as f64),
        RmaOp::Evl => DenseOut::Vector(dense::eigenvalues(a)?),
        RmaOp::Evc => DenseOut::Matrix(dense::eigen(a)?.vectors),
        RmaOp::Dsv => {
            // D as the square j×j diagonal matrix of singular values
            let s = dense::svd(a)?.s;
            let n = s.len();
            let mut d = Matrix::zeros(n, n);
            for (i, &sv) in s.iter().enumerate() {
                d.set(i, i, sv);
            }
            DenseOut::Matrix(d)
        }
        RmaOp::Usv => DenseOut::Matrix(full_u(a)?),
        RmaOp::Vsv => {
            // singular values of the m×n input, extended by the zero
            // singular values of A·Aᵀ to length m (shape type (r1, 1))
            let mut s = dense::svd(a)?.s;
            s.resize(a.rows(), 0.0);
            DenseOut::Vector(s)
        }
        other => unreachable!("dense_unary called for binary op {other:?}"),
    };
    Ok(out)
}

fn dense_binary(op: RmaOp, a: &Matrix, b: &Matrix) -> Result<Matrix, RmaError> {
    let out = match op {
        RmaOp::Mmu => dense::matmul(a, b)?,
        RmaOp::Cpd => dense::crossprod(a, b)?,
        RmaOp::Opd => dense::outer(a, b)?,
        RmaOp::Sol => dense::solve(a, b)?,
        RmaOp::Add => a.zip_with_parallel(b, |x, y| x + y)?,
        RmaOp::Sub => a.zip_with_parallel(b, |x, y| x - y)?,
        RmaOp::Emu => a.zip_with_parallel(b, |x, y| x * y)?,
        other => unreachable!("dense_binary called for unary op {other:?}"),
    };
    Ok(out)
}

fn bat_binary(op: RmaOp, a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<KernelOut, RmaError> {
    let out = match op {
        RmaOp::Mmu => bat::mmu(a, b)?,
        RmaOp::Cpd => bat::cpd(a, b)?,
        RmaOp::Opd => bat::opd(a, b)?,
        RmaOp::Sol => bat::sol(a, b)?,
        RmaOp::Add => bat::add(a, b)?,
        RmaOp::Sub => bat::sub(a, b)?,
        RmaOp::Emu => bat::emu(a, b)?,
        other => unreachable!("bat_binary called for unary op {other:?}"),
    };
    Ok(KernelOut::Cols(out))
}

/// Complete the thin-SVD `U` (m×n) to the full orthonormal `m×m` basis by
/// Gram-Schmidt against the standard basis (the extra columns span the
/// null space of `Aᵀ` and correspond to zero singular values).
fn full_u(a: &Matrix) -> Result<Matrix, RmaError> {
    let thin = dense::svd(a)?.u;
    let m = thin.rows();
    let mut basis: Vec<Vec<f64>> = (0..thin.cols()).map(|j| thin.col(j).to_vec()).collect();
    // drop zero columns (rank deficiency in the thin U)
    basis.retain(|c| norm(c) > 1e-12);
    let mut e = 0usize;
    while basis.len() < m && e < m {
        let mut v = vec![0.0; m];
        v[e] = 1.0;
        e += 1;
        for q in &basis {
            let proj = dotv(q, &v);
            for (t, &qi) in v.iter_mut().zip(q) {
                *t -= proj * qi;
            }
        }
        let n = norm(&v);
        if n > 1e-8 {
            for t in v.iter_mut() {
                *t /= n;
            }
            basis.push(v);
        }
    }
    if basis.len() != m {
        return Err(RmaError::Linalg(rma_linalg::LinalgError::NotConverged));
    }
    Ok(Matrix::from_columns(&basis)?)
}

fn dotv(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(v: &[f64]) -> f64 {
    dotv(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RmaOptions;

    fn square() -> Vec<Vec<f64>> {
        vec![vec![6.0, 8.0], vec![7.0, 5.0]]
    }

    #[test]
    fn unary_backends_agree_on_inv() {
        let mut s = ExecStats::default();
        let bat_ctx = RmaContext::with_backend(Backend::Bat);
        let dense_ctx = RmaContext::with_backend(Backend::Dense);
        let a = eval_unary(&bat_ctx, RmaOp::Inv, &square(), &mut s)
            .unwrap()
            .into_cols();
        let b = eval_unary(&dense_ctx, RmaOp::Inv, &square(), &mut s)
            .unwrap()
            .into_cols();
        for (ca, cb) in a.iter().zip(&b) {
            for (x, y) in ca.iter().zip(cb) {
                assert!((x - y).abs() < 1e-10);
            }
        }
        assert_eq!(s.last_kernel, Some(KernelUsed::Dense));
    }

    #[test]
    fn bat_forced_falls_back_for_svd() {
        let mut s = ExecStats::default();
        let ctx = RmaContext::with_backend(Backend::Bat);
        let app = vec![vec![2.0, 0.0, 0.0], vec![0.0, 5.0, 0.0]];
        let out = eval_unary(&ctx, RmaOp::Vsv, &app, &mut s)
            .unwrap()
            .into_cols();
        assert_eq!(s.last_kernel, Some(KernelUsed::DenseFallback));
        assert_eq!(out[0].len(), 3); // padded to m rows
        assert!((out[0][0] - 5.0).abs() < 1e-12);
        assert!((out[0][1] - 2.0).abs() < 1e-12);
        assert_eq!(out[0][2], 0.0);
    }

    #[test]
    fn dense_path_records_copy_time() {
        let mut s = ExecStats::default();
        let ctx = RmaContext::with_backend(Backend::Dense);
        eval_unary(&ctx, RmaOp::Qqr, &square(), &mut s).unwrap();
        assert!(s.copy_in.as_nanos() > 0);
        assert_eq!(s.ops_run, 1);
    }

    #[test]
    fn bat_path_records_no_copy_time() {
        let mut s = ExecStats::default();
        let ctx = RmaContext::with_backend(Backend::Bat);
        eval_unary(&ctx, RmaOp::Inv, &square(), &mut s).unwrap();
        assert!(s.copy_in.is_zero() && s.copy_out.is_zero());
        assert_eq!(s.last_kernel, Some(KernelUsed::Bat));
    }

    #[test]
    fn auto_uses_bat_for_elementwise() {
        let mut s = ExecStats::default();
        let ctx = RmaContext::new(RmaOptions::default());
        let a = vec![vec![1.0, 2.0]];
        let b = vec![vec![10.0, 20.0]];
        let out = eval_binary(&ctx, RmaOp::Add, &a, &b, &mut s)
            .unwrap()
            .into_cols();
        assert_eq!(out[0], vec![11.0, 22.0]);
        assert_eq!(s.last_kernel, Some(KernelUsed::Bat));
    }

    #[test]
    fn binary_backends_agree_on_mmu() {
        let mut s = ExecStats::default();
        let a = vec![vec![1.0, 3.0], vec![2.0, 4.0]]; // [[1,2],[3,4]]
        let b = vec![vec![5.0, 7.0], vec![6.0, 8.0]]; // [[5,6],[7,8]]
        let bat = eval_binary(
            &RmaContext::with_backend(Backend::Bat),
            RmaOp::Mmu,
            &a,
            &b,
            &mut s,
        )
        .unwrap()
        .into_cols();
        let dense = eval_binary(
            &RmaContext::with_backend(Backend::Dense),
            RmaOp::Mmu,
            &a,
            &b,
            &mut s,
        )
        .unwrap()
        .into_cols();
        assert_eq!(bat, dense);
        assert_eq!(bat, vec![vec![19.0, 43.0], vec![22.0, 50.0]]);
    }

    #[test]
    fn usv_full_u_is_square_orthonormal() {
        let mut s = ExecStats::default();
        let ctx = RmaContext::with_backend(Backend::Dense);
        // 4×2 application part → U must be 4×4
        let app = vec![vec![1.0, 1.0, 6.0, 8.0], vec![3.0, 4.0, 7.0, 5.0]];
        let u = eval_unary(&ctx, RmaOp::Usv, &app, &mut s)
            .unwrap()
            .into_cols();
        assert_eq!(u.len(), 4);
        assert_eq!(u[0].len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                let d = dotv(&u[i], &u[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "U not orthonormal at {i},{j}");
            }
        }
    }

    #[test]
    fn scalar_ops() {
        let mut s = ExecStats::default();
        let ctx = RmaContext::default();
        let out = eval_unary(&ctx, RmaOp::Det, &square(), &mut s).unwrap();
        match out {
            KernelOut::Scalar(d) => assert!((d - -26.0).abs() < 1e-9),
            _ => panic!("det must be scalar"),
        }
        let out = eval_unary(&ctx, RmaOp::Rnk, &square(), &mut s).unwrap();
        match out {
            KernelOut::Scalar(r) => assert_eq!(r, 2.0),
            _ => panic!("rnk must be scalar"),
        }
    }
}
