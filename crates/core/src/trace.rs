//! Query profiling: structured trace spans and the Chrome-trace exporter.
//!
//! The recording substrate lives in [`rma_relation::trace`] (so the worker
//! pool and the parallel operators — which cannot depend on this crate —
//! can record); this module is the user-facing API:
//!
//! - [`TraceSession`] installs a span collector for a profiled region
//!   (typically one query), and [`TraceSession::finish`] returns the
//!   recorded [`Span`]s, start-ordered.
//! - [`chrome_trace_json`] renders spans in the Chrome trace-event format,
//!   loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)
//!   — one timeline lane per worker, with rows/morsels attached as event
//!   arguments.
//!
//! Overhead contract: with no session active every instrumentation point
//! costs one relaxed atomic load ([`rma_relation::trace::enabled`]); with
//! a session active, spans are `Copy` structs appended to per-worker
//! buffers — no per-span allocation, no serialization until export. The
//! `profile` bench target gates the traced/untraced ratio at ≤ 5%.
//!
//! ```
//! use rma_core::{trace::TraceSession, RmaContext};
//! use rma_core::plan::Frame;
//! use rma_relation::{Expr, RelationBuilder};
//!
//! let r = RelationBuilder::new()
//!     .column("x", (0..5000i64).collect::<Vec<_>>())
//!     .build()
//!     .unwrap();
//! let ctx = RmaContext::default();
//! let session = TraceSession::start();
//! Frame::scan(r)
//!     .select(Expr::col("x").lt(Expr::lit(100i64)))
//!     .collect(&ctx)
//!     .unwrap();
//! let spans = session.finish();
//! assert!(spans.iter().any(|s| s.cat == "exec"));
//! let json = rma_core::trace::chrome_trace_json(&spans);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

use rma_relation::trace as sink;
pub use rma_relation::trace::Span;
use std::sync::Arc;

/// A profiling session: installing one starts span collection
/// process-wide; [`finish`](TraceSession::finish) (or drop) stops it.
///
/// Sessions nest last-wins: starting a second session while one is active
/// redirects recording to the newer one, and the older session's `finish`
/// returns what it captured before being superseded.
#[derive(Debug)]
pub struct TraceSession {
    collector: Arc<sink::TraceCollector>,
}

impl TraceSession {
    /// Install a fresh collector and start recording spans.
    pub fn start() -> Self {
        let collector = Arc::new(sink::TraceCollector::new());
        sink::install(Arc::clone(&collector));
        TraceSession { collector }
    }

    /// Stop recording and return every captured span, start-ordered.
    pub fn finish(self) -> Vec<Span> {
        sink::uninstall(&self.collector);
        self.collector.drain()
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // finish() already uninstalled (identity-checked, so this is a
        // no-op after it); this covers early drops and unwinding
        sink::uninstall(&self.collector);
    }
}

/// Render spans in the Chrome trace-event format (JSON object form), ready
/// for `chrome://tracing` or Perfetto: complete (`"ph":"X"`) events with
/// microsecond timestamps, one thread lane per worker, and
/// `rows_in`/`rows_out`/`morsels` as event arguments.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"rows_in\":{},\"rows_out\":{},\"morsels\":{}}}}}",
            s.name,
            s.cat,
            s.start_ns / 1_000,
            (s.dur_ns / 1_000).max(1),
            s.worker,
            s.rows_in,
            s.rows_out,
            s.morsels
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Frame;
    use crate::RmaContext;
    use rma_relation::{Expr, RelationBuilder};

    fn big(n: i64) -> rma_relation::Relation {
        RelationBuilder::new()
            .column("x", (0..n).collect::<Vec<_>>())
            .column("y", (0..n).map(|i| (i * 3) % 7).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn a_traced_query_yields_exec_and_pool_spans() {
        let ctx = RmaContext::default();
        let session = TraceSession::start();
        let out = Frame::scan(big(5000))
            .select(Expr::col("y").eq(Expr::lit(3i64)))
            .collect(&ctx)
            .unwrap();
        let spans = session.finish();
        assert!(!out.is_empty());
        assert!(
            spans.iter().any(|s| s.cat == "exec"),
            "no exec span in {spans:?}"
        );
        if ctx.pool().threads() > 1 {
            assert!(spans.iter().any(|s| s.cat == "pool"), "no pool span");
        }
        // start-ordered
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn chrome_export_is_wellformed_and_complete() {
        let spans = vec![
            Span {
                name: "exec.select",
                cat: "exec",
                worker: 0,
                start_ns: 1_500,
                dur_ns: 2_000_000,
                rows_in: 100,
                rows_out: 40,
                morsels: 4,
            },
            Span {
                name: "pool.job",
                cat: "pool",
                worker: 3,
                start_ns: 2_000,
                dur_ns: 10, // sub-microsecond: clamped to dur 1
                rows_in: 0,
                rows_out: 0,
                morsels: 0,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"exec.select\""));
        assert!(json.contains("\"ts\":1,\"dur\":2000"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"dur\":1,"));
        assert!(json.contains("\"rows_out\":40"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn empty_session_exports_an_empty_trace() {
        let session = TraceSession::start();
        let spans = session.finish();
        let json = chrome_trace_json(&spans);
        assert_eq!(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
