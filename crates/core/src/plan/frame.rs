//! The fluent lazy builder over [`LogicalPlan`].
//!
//! A [`Frame`] records relational and matrix operations without executing
//! them; [`Frame::collect`] optimizes the accumulated plan (projection and
//! selection pushdown, redundant-sort elimination, plan-level kernel
//! choice) and runs it. This gives programmatic users the same optimizing
//! plan layer the SQL frontend uses:
//!
//! ```
//! use rma_core::plan::Frame;
//! use rma_core::RmaContext;
//! use rma_relation::{Expr, RelationBuilder};
//!
//! let rating = RelationBuilder::new()
//!     .column("u", vec!["Ann", "Tom", "Jan"])
//!     .column("balto", vec![2.0f64, 0.0, 1.0])
//!     .column("heat", vec![1.5f64, 0.0, 4.0])
//!     .build()
//!     .unwrap();
//!
//! let ctx = RmaContext::default();
//! let out = Frame::scan(rating)
//!     .select(Expr::col("u").lt(Expr::lit("Tom")))
//!     .qqr(&["u"])
//!     .collect(&ctx)
//!     .unwrap();
//! assert_eq!(out.len(), 2);
//! ```

use super::{
    execute, execute_analyzed, explain_analyze, explain_with_stats, optimize, LogicalPlan,
    NoTables, PartitionedTableProvider, PlanError, RmaArg,
};
use crate::context::RmaContext;
use crate::shape::RmaOp;
use rma_relation::{AggSpec, Expr, Relation};
use std::sync::Arc;

/// A lazy computation over the combined relational + matrix algebra.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    plan: LogicalPlan,
}

impl Frame {
    // -- constructors ---------------------------------------------------

    /// Lazily scan an in-memory relation.
    pub fn scan(rel: Relation) -> Frame {
        Frame {
            plan: LogicalPlan::Values {
                rel: Arc::new(rel),
                projection: None,
            },
        }
    }

    /// Lazily scan a named table, resolved through the
    /// [`PartitionedTableProvider`] passed to [`Frame::collect_with`].
    pub fn table(name: impl Into<String>) -> Frame {
        Frame {
            plan: LogicalPlan::Scan {
                table: name.into(),
                projection: None,
            },
        }
    }

    /// Wrap an existing logical plan.
    pub fn from_plan(plan: LogicalPlan) -> Frame {
        Frame { plan }
    }

    /// The accumulated (unoptimized) logical plan.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Consume the frame, yielding the accumulated logical plan.
    pub fn into_plan(self) -> LogicalPlan {
        self.plan
    }

    // -- relational operators -------------------------------------------

    /// σ: keep rows satisfying the predicate.
    pub fn select(self, predicate: Expr) -> Frame {
        self.wrap(|input| LogicalPlan::Select { input, predicate })
    }

    /// Alias for [`Frame::select`], matching dataframe-API conventions.
    pub fn filter(self, predicate: Expr) -> Frame {
        self.select(predicate)
    }

    /// π: keep the named columns, in the given order.
    pub fn project(self, names: &[&str]) -> Frame {
        let items = names
            .iter()
            .map(|n| (Expr::Col(n.to_string()), n.to_string()))
            .collect();
        self.wrap(|input| LogicalPlan::Project { input, items })
    }

    /// Generalised projection: arbitrary expressions with output names.
    pub fn project_exprs(self, items: Vec<(Expr, String)>) -> Frame {
        self.wrap(|input| LogicalPlan::Project { input, items })
    }

    /// ϑ: group by the given attributes and compute aggregates.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Frame {
        let group_by = group_by.iter().map(|s| s.to_string()).collect();
        self.wrap(|input| LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        })
    }

    /// Equi-join on explicit column pairs.
    pub fn join(self, other: Frame, on: &[(&str, &str)]) -> Frame {
        let on = on
            .iter()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect();
        Frame {
            plan: LogicalPlan::JoinOn {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
                on,
            },
        }
    }

    /// Natural join on shared attribute names.
    pub fn natural_join(self, other: Frame) -> Frame {
        Frame {
            plan: LogicalPlan::NaturalJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Cross product.
    pub fn cross(self, other: Frame) -> Frame {
        Frame {
            plan: LogicalPlan::Cross {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Bag union with a union-compatible frame.
    pub fn union_all(self, other: Frame) -> Frame {
        Frame {
            plan: LogicalPlan::UnionAll {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Duplicate elimination.
    pub fn distinct(self) -> Frame {
        self.wrap(|input| LogicalPlan::Distinct { input })
    }

    /// Sort by attributes; `ascending[k]` gives the k-th direction
    /// (all-ascending when empty).
    pub fn order_by(self, attrs: &[&str], ascending: &[bool]) -> Frame {
        let keys = attrs
            .iter()
            .enumerate()
            .map(|(k, a)| (a.to_string(), ascending.get(k).copied().unwrap_or(true)))
            .collect();
        self.wrap(|input| LogicalPlan::OrderBy { input, keys })
    }

    /// Keep the first `n` rows.
    pub fn limit(self, n: usize) -> Frame {
        self.wrap(|input| LogicalPlan::Limit { input, n })
    }

    /// Assert that the given attributes form a key (pass-through).
    pub fn assert_key(self, attrs: &[&str]) -> Frame {
        let attrs = attrs.iter().map(|s| s.to_string()).collect();
        self.wrap(|input| LogicalPlan::AssertKey { input, attrs })
    }

    // -- relational matrix operations -----------------------------------

    /// Generic unary relational matrix operation `op_U(self)`.
    pub fn rma_unary(self, op: RmaOp, order: &[&str]) -> Frame {
        assert!(!op.is_binary(), "rma_unary called with binary op {op:?}");
        Frame {
            plan: LogicalPlan::Rma {
                op,
                args: vec![RmaArg::new(self.plan, owned(order))],
                backend: None,
            },
        }
    }

    /// Generic binary relational matrix operation `op_{U;V}(self, other)`.
    pub fn rma_binary(
        self,
        op: RmaOp,
        order: &[&str],
        other: Frame,
        other_order: &[&str],
    ) -> Frame {
        assert!(op.is_binary(), "rma_binary called with unary op {op:?}");
        Frame {
            plan: LogicalPlan::Rma {
                op,
                args: vec![
                    RmaArg::new(self.plan, owned(order)),
                    RmaArg::new(other.plan, owned(other_order)),
                ],
                backend: None,
            },
        }
    }

    // -- execution ------------------------------------------------------

    /// Optimize and execute the plan. `Scan` nodes (from [`Frame::table`])
    /// cannot be resolved without a provider; use [`Frame::collect_with`].
    pub fn collect(&self, ctx: &RmaContext) -> Result<Relation, PlanError> {
        self.collect_with(ctx, &NoTables)
    }

    /// Optimize and execute the plan, resolving named tables through the
    /// provider. `collect` is a pipeline sink: intermediate results flow
    /// through as selection-vector views, and the final relation is
    /// compacted here before it is handed to the caller.
    pub fn collect_with(
        &self,
        ctx: &RmaContext,
        provider: &dyn PartitionedTableProvider,
    ) -> Result<Relation, PlanError> {
        let plan = optimize(self.plan.clone(), ctx, provider);
        Ok(execute(&plan, ctx, provider)?.materialize())
    }

    /// Render the optimized plan as an EXPLAIN-style tree, annotated with
    /// per-node `rows≈`/`cost≈` estimates ([`super::explain_with_stats`]).
    pub fn explain(&self, ctx: &RmaContext) -> String {
        self.explain_with(ctx, &NoTables)
    }

    /// [`Frame::explain`] with named tables resolved through a provider.
    pub fn explain_with(
        &self,
        ctx: &RmaContext,
        provider: &dyn PartitionedTableProvider,
    ) -> String {
        explain_with_stats(&optimize(self.plan.clone(), ctx, provider), provider)
    }

    /// `EXPLAIN ANALYZE`: optimize the plan, **execute it** with per-node
    /// profiling, and render the cost-annotated tree with measured
    /// actuals — output rows, inclusive wall time, morsel count, and the
    /// estimate-vs-actual q-error — appended to every line
    /// ([`super::explain_analyze`]). Analyzed runs execute
    /// operator-at-a-time (pipeline fusion off), so the printed tree and
    /// its actual row counts are identical at any thread count.
    pub fn explain_analyze(&self, ctx: &RmaContext) -> Result<String, PlanError> {
        self.explain_analyze_with(ctx, &NoTables)
    }

    /// [`Frame::explain_analyze`] with named tables resolved through a
    /// provider.
    pub fn explain_analyze_with(
        &self,
        ctx: &RmaContext,
        provider: &dyn PartitionedTableProvider,
    ) -> Result<String, PlanError> {
        let plan = optimize(self.plan.clone(), ctx, provider);
        let (_, actuals) = execute_analyzed(&plan, ctx, provider)?;
        Ok(explain_analyze(&plan, provider, &actuals))
    }

    fn wrap(self, f: impl FnOnce(Box<LogicalPlan>) -> LogicalPlan) -> Frame {
        Frame {
            plan: f(Box::new(self.plan)),
        }
    }
}

fn owned(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// The 19 named operations as fluent methods.
macro_rules! frame_unary {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Frame {
            $(
                $(#[$doc])*
                pub fn $name(self, order: &[&str]) -> Frame {
                    self.rma_unary(RmaOp::$op, order)
                }
            )+
        }
    };
}

macro_rules! frame_binary {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl Frame {
            $(
                $(#[$doc])*
                pub fn $name(self, order: &[&str], other: Frame, other_order: &[&str]) -> Frame {
                    self.rma_binary(RmaOp::$op, order, other, other_order)
                }
            )+
        }
    };
}

frame_unary!(
    /// Matrix inversion `inv_U`.
    inv => Inv,
    /// Eigenvectors `evc_U`.
    evc => Evc,
    /// Eigenvalues `evl_U`.
    evl => Evl,
    /// Cholesky factor `chf_U`.
    chf => Chf,
    /// Q of the QR decomposition `qqr_U`.
    qqr => Qqr,
    /// R of the QR decomposition `rqr_U`.
    rqr => Rqr,
    /// Transpose `tra_U`.
    tra => Tra,
    /// Left singular vectors `usv_U`.
    usv => Usv,
    /// Diagonal singular-value matrix `dsv_U`.
    dsv => Dsv,
    /// Singular-value column `vsv_U`.
    vsv => Vsv,
    /// Determinant `det_U`.
    det => Det,
    /// Rank `rnk_U`.
    rnk => Rnk,
);

frame_binary!(
    /// Matrix addition `add_{U;V}`.
    add => Add,
    /// Matrix subtraction `sub_{U;V}`.
    sub => Sub,
    /// Element-wise multiplication `emu_{U;V}`.
    emu => Emu,
    /// Matrix multiplication `mmu_{U;V}`.
    mmu => Mmu,
    /// Cross product `cpd_{U;V}` (`AᵀB`).
    cpd => Cpd,
    /// Outer product `opd_{U;V}` (`ABᵀ`).
    opd => Opd,
    /// Linear solve `sol_{U;V}`.
    sol => Sol,
);
