//! Lazy logical plans over the combined relational + matrix algebra.
//!
//! The paper's central claim is that relational and matrix operations form
//! *one* closed algebra; this module gives that algebra one composable plan
//! representation. A [`LogicalPlan`] covers scans, the classical relational
//! operators, and all 19 relational matrix operations, and every frontend —
//! the fluent [`Frame`] builder for Rust users and the SQL layer's
//! `plan_select` — lowers to it. A shared optimizer
//! ([`optimize`]) then performs cross-operator rewrites (projection
//! pushdown, selection pushdown, redundant-sort elimination, plan-level
//! kernel choice) that no eager API could express, and a single interpreter
//! ([`execute`]) runs the optimized plan against the eager kernels in
//! [`crate::ops`].

mod exec;
mod frame;
mod optimize;
mod par;

pub use exec::execute;
pub use frame::Frame;
pub use optimize::{optimize, output_columns};

use crate::context::Backend;
use crate::error::RmaError;
use crate::shape::RmaOp;
use rma_relation::{AggSpec, Expr, Relation, RelationError};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// A source of named tables for [`LogicalPlan::Scan`] nodes. The SQL
/// catalog implements this; plans built purely from in-memory relations via
/// [`Frame::scan`] never need one.
pub trait TableProvider {
    fn table(&self, name: &str) -> Option<&Relation>;
}

/// A [`TableProvider`] whose tables can be scanned as row-range partitions
/// — the scan side of the morsel-driven parallel engine. The default
/// implementation splits a table into up to `target` near-equal contiguous
/// row ranges with the in-memory row-range partitioner
/// ([`rma_relation::partition_ranges`]); providers backed by sharded or
/// chunked storage can override it to expose natural shard boundaries.
/// Returning `None` (or a single range) makes the executor fall back to a
/// serial scan of that table.
pub trait PartitionedTableProvider: TableProvider {
    fn scan_partitions(&self, table: &str, target: usize) -> Option<Vec<Range<usize>>> {
        self.table(table)
            .map(|r| rma_relation::partition_ranges(r.len(), target))
    }
}

/// The empty provider: every `Scan` fails to resolve.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTables;

impl TableProvider for NoTables {
    fn table(&self, _name: &str) -> Option<&Relation> {
        None
    }
}

impl PartitionedTableProvider for NoTables {}

/// One argument of a relational matrix operation in a plan: the input plan,
/// its order schema, and an optimizer-set flag recording that the input is
/// already sorted by that schema (so execution may skip the sort).
#[derive(Debug, Clone, PartialEq)]
pub struct RmaArg {
    pub input: Box<LogicalPlan>,
    pub order: Vec<String>,
    pub sorted_input: bool,
}

impl RmaArg {
    pub fn new(input: LogicalPlan, order: Vec<String>) -> Self {
        RmaArg {
            input: Box::new(input),
            order,
            sorted_input: false,
        }
    }
}

/// A lazy logical plan over the combined relational + matrix algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of an in-memory relation (the [`Frame`] entry point).
    Values {
        rel: Arc<Relation>,
        /// Optimizer-set column pruning, applied at scan time.
        projection: Option<Vec<String>>,
    },
    /// Scan of a named table, resolved through a [`TableProvider`].
    Scan {
        table: String,
        projection: Option<Vec<String>>,
    },
    /// σ.
    Select {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Generalised projection (expression, output name).
    Project {
        input: Box<LogicalPlan>,
        items: Vec<(Expr, String)>,
    },
    /// ϑ.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// Natural join.
    NaturalJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Equi-join on explicit column pairs.
    JoinOn {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<(String, String)>,
    },
    /// Cross product.
    Cross {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Bag union (schemas must be union compatible).
    UnionAll {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Duplicate elimination.
    Distinct { input: Box<LogicalPlan> },
    /// Sorting.
    OrderBy {
        input: Box<LogicalPlan>,
        keys: Vec<(String, bool)>,
    },
    /// Row-count limit.
    Limit { input: Box<LogicalPlan>, n: usize },
    /// Bounded top-k: the first `n` rows of the input ordered by `keys`,
    /// computed with a bounded heap instead of a full sort. Produced by the
    /// optimizer's Limit-into-Sort rewrite; no frontend emits it directly.
    TopK {
        input: Box<LogicalPlan>,
        keys: Vec<(String, bool)>,
        n: usize,
    },
    /// A relational matrix operation. `backend` is the optimizer's
    /// plan-level kernel choice when argument sizes are statically exact.
    Rma {
        op: RmaOp,
        args: Vec<RmaArg>,
        backend: Option<Backend>,
    },
    /// Key assertion: pass the input through unchanged, erroring if the
    /// given attributes do not form a key. Inserted by rewrites that
    /// eliminate or bypass an RMA operation but must preserve its
    /// order-schema validation.
    AssertKey {
        input: Box<LogicalPlan>,
        attrs: Vec<String>,
    },
}

impl LogicalPlan {
    /// Plain RMA node with no optimizer annotations.
    pub fn rma(op: RmaOp, args: Vec<(LogicalPlan, Vec<String>)>) -> Self {
        LogicalPlan::Rma {
            op,
            args: args
                .into_iter()
                .map(|(p, order)| RmaArg::new(p, order))
                .collect(),
            backend: None,
        }
    }

    /// Apply `f` to every direct child plan, rebuilding this node.
    pub fn map_children(self, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
        use LogicalPlan::*;
        match self {
            Select { input, predicate } => Select {
                input: Box::new(f(*input)),
                predicate,
            },
            Project { input, items } => Project {
                input: Box::new(f(*input)),
                items,
            },
            Aggregate {
                input,
                group_by,
                aggs,
            } => Aggregate {
                input: Box::new(f(*input)),
                group_by,
                aggs,
            },
            NaturalJoin { left, right } => NaturalJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            JoinOn { left, right, on } => JoinOn {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                on,
            },
            Cross { left, right } => Cross {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            UnionAll { left, right } => UnionAll {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            Distinct { input } => Distinct {
                input: Box::new(f(*input)),
            },
            OrderBy { input, keys } => OrderBy {
                input: Box::new(f(*input)),
                keys,
            },
            Limit { input, n } => Limit {
                input: Box::new(f(*input)),
                n,
            },
            TopK { input, keys, n } => TopK {
                input: Box::new(f(*input)),
                keys,
                n,
            },
            Rma { op, args, backend } => Rma {
                op,
                args: args
                    .into_iter()
                    .map(|a| RmaArg {
                        input: Box::new(f(*a.input)),
                        order: a.order,
                        sorted_input: a.sorted_input,
                    })
                    .collect(),
                backend,
            },
            AssertKey { input, attrs } => AssertKey {
                input: Box::new(f(*input)),
                attrs,
            },
            leaf @ (Values { .. } | Scan { .. }) => leaf,
        }
    }
}

/// Errors from building, optimizing, or executing a logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A `Scan` node references a table the provider does not know.
    UnknownTable(String),
    /// Semantic plan error.
    Plan(String),
    /// Relational execution error.
    Relation(RelationError),
    /// Relational matrix operation error.
    Rma(RmaError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PlanError::Plan(m) => write!(f, "plan error: {m}"),
            PlanError::Relation(e) => write!(f, "{e}"),
            PlanError::Rma(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Relation(e) => Some(e),
            PlanError::Rma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for PlanError {
    fn from(e: RelationError) -> Self {
        PlanError::Relation(e)
    }
}

impl From<RmaError> for PlanError {
    fn from(e: RmaError) -> Self {
        PlanError::Rma(e)
    }
}

/// Pretty-print a plan tree (EXPLAIN-style). Optimizer annotations —
/// scan projections, skipped sorts, plan-chosen backends — are rendered so
/// snapshot tests can observe rewrites.
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    walk_explain(plan, 0, &mut out);
    out
}

fn walk_explain(p: &LogicalPlan, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    match p {
        LogicalPlan::Values { rel, projection } => {
            let name = rel.name().unwrap_or("<inline>");
            let _ = write!(out, "{pad}Values {name} rows={}", rel.len());
            if let Some(cols) = projection {
                let _ = write!(out, " project=[{}]", cols.join(", "));
            }
            out.push('\n');
        }
        LogicalPlan::Scan { table, projection } => {
            let _ = write!(out, "{pad}Scan {table}");
            if let Some(cols) = projection {
                let _ = write!(out, " project=[{}]", cols.join(", "));
            }
            out.push('\n');
        }
        LogicalPlan::Select { input, predicate } => {
            let _ = writeln!(out, "{pad}Select {predicate}");
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::Project { input, items } => {
            let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
            let _ = writeln!(out, "{pad}Project [{}]", names.join(", "));
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let _ = writeln!(
                out,
                "{pad}Aggregate group_by={group_by:?} aggs={}",
                aggs.len()
            );
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let _ = writeln!(out, "{pad}NaturalJoin");
            walk_explain(left, depth + 1, out);
            walk_explain(right, depth + 1, out);
        }
        LogicalPlan::JoinOn { left, right, on } => {
            let _ = writeln!(out, "{pad}JoinOn {on:?}");
            walk_explain(left, depth + 1, out);
            walk_explain(right, depth + 1, out);
        }
        LogicalPlan::Cross { left, right } => {
            let _ = writeln!(out, "{pad}Cross");
            walk_explain(left, depth + 1, out);
            walk_explain(right, depth + 1, out);
        }
        LogicalPlan::UnionAll { left, right } => {
            let _ = writeln!(out, "{pad}UnionAll");
            walk_explain(left, depth + 1, out);
            walk_explain(right, depth + 1, out);
        }
        LogicalPlan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::OrderBy { input, keys } => {
            let _ = writeln!(out, "{pad}OrderBy {keys:?}");
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, n } => {
            let _ = writeln!(out, "{pad}Limit {n}");
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::TopK { input, keys, n } => {
            let _ = writeln!(out, "{pad}TopK {keys:?} n={n}");
            walk_explain(input, depth + 1, out);
        }
        LogicalPlan::Rma { op, args, backend } => {
            let orders: Vec<String> = args
                .iter()
                .map(|a| {
                    let mut o = format!("{:?}", a.order);
                    if a.sorted_input {
                        o.push_str(" (sorted: skip sort)");
                    }
                    o
                })
                .collect();
            let _ = write!(
                out,
                "{pad}Rma {} BY {}",
                op.name().to_uppercase(),
                orders.join("; ")
            );
            if let Some(b) = backend {
                let _ = write!(out, " backend={b:?}");
            }
            out.push('\n');
            for a in args {
                walk_explain(&a.input, depth + 1, out);
            }
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let _ = writeln!(out, "{pad}AssertKey {attrs:?}");
            walk_explain(input, depth + 1, out);
        }
    }
}
