//! Lazy logical plans over the combined relational + matrix algebra.
//!
//! The paper's central claim is that relational and matrix operations form
//! *one* closed algebra; this module gives that algebra one composable plan
//! representation. A [`LogicalPlan`] covers scans, the classical relational
//! operators, and all 19 relational matrix operations, and every frontend —
//! the fluent [`Frame`] builder for Rust users and the SQL layer's
//! `plan_select` — lowers to it. A shared optimizer
//! ([`optimize()`]) then performs cross-operator rewrites (projection
//! pushdown, selection pushdown, cost-based join ordering, redundant-sort
//! elimination, plan-level kernel choice) that no eager API could express,
//! and a single interpreter ([`execute`]) runs the optimized plan against
//! the eager kernels in [`crate::ops`].
//!
//! Cost-based decisions are driven by the [`stats`] module: per-table
//! statistics (row counts, per-column distinct estimates and min/max,
//! computed lazily and cached on the [`Relation`]) propagate bottom-up
//! into per-node cardinality and cost estimates. [`explain_with_stats`]
//! renders those estimates as `rows≈`/`cost≈` annotations on every plan
//! line, which is how the chosen join order is inspected and
//! snapshot-tested.

mod exec;
mod frame;
pub mod optimize;
mod par;
pub mod stats;

pub use exec::{execute, execute_analyzed, NodeActual};
pub use frame::Frame;
pub use optimize::{optimize, output_columns};

use crate::context::Backend;
use crate::error::RmaError;
use crate::shape::RmaOp;
use rma_relation::{AggSpec, Expr, Relation, RelationError};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// A source of named tables for [`LogicalPlan::Scan`] nodes. The SQL
/// catalog implements this; plans built purely from in-memory relations via
/// [`Frame::scan`] never need one.
pub trait TableProvider {
    /// Resolve a table by name, or `None` when unknown.
    fn table(&self, name: &str) -> Option<&Relation>;

    /// Table statistics for cost-based optimization. The default reads the
    /// lazily computed, relation-cached statistics
    /// ([`Relation::statistics`]); providers with their own statistics
    /// store (histograms, remote catalogs) can override.
    fn statistics(&self, name: &str) -> Option<&rma_relation::Statistics> {
        self.table(name).map(|r| r.statistics())
    }
}

/// A [`TableProvider`] whose tables can be scanned as row-range partitions
/// — the scan side of the morsel-driven parallel engine. The default
/// implementation splits a table into up to `target` near-equal contiguous
/// row ranges with the in-memory row-range partitioner
/// ([`rma_relation::partition_ranges`]); providers backed by sharded or
/// chunked storage can override it to expose natural shard boundaries.
/// Returning `None` (or a single range) makes the executor fall back to a
/// serial scan of that table.
pub trait PartitionedTableProvider: TableProvider {
    /// Row ranges to scan `table` in, targeting (up to) `target` morsels;
    /// `None` or a single range falls back to a serial scan.
    fn scan_partitions(&self, table: &str, target: usize) -> Option<Vec<Range<usize>>> {
        self.table(table)
            .map(|r| rma_relation::partition_ranges(r.len(), target))
    }
}

/// The empty provider: every `Scan` fails to resolve.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTables;

impl TableProvider for NoTables {
    fn table(&self, _name: &str) -> Option<&Relation> {
        None
    }
}

impl PartitionedTableProvider for NoTables {}

/// One argument of a relational matrix operation in a plan: the input plan,
/// its order schema, and an optimizer-set flag recording that the input is
/// already sorted by that schema (so execution may skip the sort).
#[derive(Debug, Clone, PartialEq)]
pub struct RmaArg {
    /// The plan producing this argument.
    pub input: Box<LogicalPlan>,
    /// The argument's order schema.
    pub order: Vec<String>,
    /// Optimizer-set: the input is already sorted by `order`, so execution
    /// may skip the sort.
    pub sorted_input: bool,
}

impl RmaArg {
    /// Argument with no optimizer annotations.
    pub fn new(input: LogicalPlan, order: Vec<String>) -> Self {
        RmaArg {
            input: Box::new(input),
            order,
            sorted_input: false,
        }
    }
}

/// A lazy logical plan over the combined relational + matrix algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of an in-memory relation (the [`Frame`] entry point).
    Values {
        /// The scanned relation (shared, never copied by the plan).
        rel: Arc<Relation>,
        /// Optimizer-set column pruning, applied at scan time.
        projection: Option<Vec<String>>,
    },
    /// Scan of a named table, resolved through a [`TableProvider`].
    Scan {
        /// Name the provider resolves.
        table: String,
        /// Optimizer-set column pruning, applied at scan time.
        projection: Option<Vec<String>>,
    },
    /// σ.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Rows satisfying this predicate are kept.
        predicate: Expr,
    },
    /// Generalised projection (expression, output name).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` per output column.
        items: Vec<(Expr, String)>,
    },
    /// ϑ.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping attributes (empty for a global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute per group.
        aggs: Vec<AggSpec>,
    },
    /// Natural join.
    NaturalJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Equi-join on explicit column pairs.
    JoinOn {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// `(left column, right column)` equality pairs.
        on: Vec<(String, String)>,
    },
    /// Cross product.
    Cross {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Bag union (schemas must be union compatible).
    UnionAll {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Sorting.
    OrderBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(attribute, ascending)` sort keys, major first.
        keys: Vec<(String, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Number of rows kept.
        n: usize,
    },
    /// Bounded top-k: the first `n` rows of the input ordered by `keys`,
    /// computed with a bounded heap instead of a full sort. Produced by the
    /// optimizer's Limit-into-Sort rewrite; no frontend emits it directly.
    TopK {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(attribute, ascending)` sort keys, major first.
        keys: Vec<(String, bool)>,
        /// Number of rows kept.
        n: usize,
    },
    /// A relational matrix operation. `backend` is the optimizer's
    /// plan-level kernel choice when argument sizes are statically exact.
    Rma {
        /// Which of the 19 operations.
        op: RmaOp,
        /// One argument per operand (one for unary, two for binary ops).
        args: Vec<RmaArg>,
        /// Optimizer-set plan-level kernel choice.
        backend: Option<Backend>,
    },
    /// Key assertion: pass the input through unchanged, erroring if the
    /// given attributes do not form a key. Inserted by rewrites that
    /// eliminate or bypass an RMA operation but must preserve its
    /// order-schema validation.
    AssertKey {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Attributes that must form a key.
        attrs: Vec<String>,
    },
}

impl LogicalPlan {
    /// Plain RMA node with no optimizer annotations.
    pub fn rma(op: RmaOp, args: Vec<(LogicalPlan, Vec<String>)>) -> Self {
        LogicalPlan::Rma {
            op,
            args: args
                .into_iter()
                .map(|(p, order)| RmaArg::new(p, order))
                .collect(),
            backend: None,
        }
    }

    /// Apply `f` to every direct child plan, rebuilding this node.
    pub fn map_children(self, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
        use LogicalPlan::*;
        match self {
            Select { input, predicate } => Select {
                input: Box::new(f(*input)),
                predicate,
            },
            Project { input, items } => Project {
                input: Box::new(f(*input)),
                items,
            },
            Aggregate {
                input,
                group_by,
                aggs,
            } => Aggregate {
                input: Box::new(f(*input)),
                group_by,
                aggs,
            },
            NaturalJoin { left, right } => NaturalJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            JoinOn { left, right, on } => JoinOn {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                on,
            },
            Cross { left, right } => Cross {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            UnionAll { left, right } => UnionAll {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            Distinct { input } => Distinct {
                input: Box::new(f(*input)),
            },
            OrderBy { input, keys } => OrderBy {
                input: Box::new(f(*input)),
                keys,
            },
            Limit { input, n } => Limit {
                input: Box::new(f(*input)),
                n,
            },
            TopK { input, keys, n } => TopK {
                input: Box::new(f(*input)),
                keys,
                n,
            },
            Rma { op, args, backend } => Rma {
                op,
                args: args
                    .into_iter()
                    .map(|a| RmaArg {
                        input: Box::new(f(*a.input)),
                        order: a.order,
                        sorted_input: a.sorted_input,
                    })
                    .collect(),
                backend,
            },
            AssertKey { input, attrs } => AssertKey {
                input: Box::new(f(*input)),
                attrs,
            },
            leaf @ (Values { .. } | Scan { .. }) => leaf,
        }
    }
}

/// Does the plan contain at least one operator with an out-of-core
/// implementation — a join, a sort, or a keyed aggregation? The serving
/// layer's admission control uses this: a query whose estimated working
/// set exceeds the memory budget is still admitted when it can spill,
/// because the grace join / external sort / spilling aggregate bound the
/// resident footprint regardless of the estimate. A plan of scans and
/// projections alone has no spill path, so for it the estimate stays
/// binding and admission still rejects.
pub fn spillable(plan: &LogicalPlan) -> bool {
    use LogicalPlan::*;
    match plan {
        NaturalJoin { .. } | JoinOn { .. } | OrderBy { .. } => true,
        Aggregate {
            input, group_by, ..
        } => !group_by.is_empty() || spillable(input),
        Select { input, .. }
        | Project { input, .. }
        | Distinct { input }
        | Limit { input, .. }
        | TopK { input, .. }
        | AssertKey { input, .. } => spillable(input),
        Cross { left, right } | UnionAll { left, right } => spillable(left) || spillable(right),
        Rma { args, .. } => args.iter().any(|a| spillable(&a.input)),
        Values { .. } | Scan { .. } => false,
    }
}

/// Errors from building, optimizing, or executing a logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A `Scan` node references a table the provider does not know.
    UnknownTable(String),
    /// Semantic plan error.
    Plan(String),
    /// Relational execution error.
    Relation(RelationError),
    /// Relational matrix operation error.
    Rma(RmaError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PlanError::Plan(m) => write!(f, "plan error: {m}"),
            PlanError::Relation(e) => write!(f, "{e}"),
            PlanError::Rma(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Relation(e) => Some(e),
            PlanError::Rma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for PlanError {
    fn from(e: RelationError) -> Self {
        match e {
            // governance trips (and spill-I/O faults) surface as RmaError
            // variants so every caller (Frame, SQL, serve) matches them in
            // one typed place
            RelationError::Cancelled
            | RelationError::DeadlineExceeded
            | RelationError::ResourceExhausted { .. }
            | RelationError::SpillIo(_) => PlanError::Rma(RmaError::from(e)),
            other => PlanError::Relation(other),
        }
    }
}

impl From<RmaError> for PlanError {
    fn from(e: RmaError) -> Self {
        PlanError::Rma(e)
    }
}

/// Pretty-print a plan tree (EXPLAIN-style). Optimizer annotations —
/// scan projections, skipped sorts, plan-chosen backends — are rendered so
/// snapshot tests can observe rewrites. See [`explain_with_stats`] for the
/// variant that also prints per-node cardinality and cost estimates.
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    walk_explain(plan, 0, &mut out, None, &mut Default::default(), &mut None);
    out
}

/// Pretty-print a plan tree with per-node cost annotations: every line
/// ends in `rows≈N cost≈C`, the estimated output cardinality and
/// accumulated cost (in rows-touched units, see [`stats::estimate`]) of
/// that node. This is what SQL `EXPLAIN` prints, and how the cost-based
/// join order is made visible and snapshot-testable.
pub fn explain_with_stats(plan: &LogicalPlan, provider: &dyn TableProvider) -> String {
    let mut out = String::new();
    // one shared memo: the whole tree is estimated once, and each node's
    // annotation reads its cached subtree estimate
    let mut memo = std::collections::HashMap::new();
    walk_explain(plan, 0, &mut out, Some(provider), &mut memo, &mut None);
    out
}

/// Pretty-print a plan tree with *both* the optimizer's estimates and the
/// measured actuals of an [`execute_analyzed`] run: every line carries
/// `rows≈`/`cost≈` plus `actual=N time=T morsels=M q_err=Q`, where the
/// q-error is `max(est/actual, actual/est)` (clamped to ≥ 1-row sides) —
/// the standard one-glance measure of estimator drift. `actuals` must come
/// from an analyzed execution of **this** plan (same pre-order).
pub fn explain_analyze(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    actuals: &[NodeActual],
) -> String {
    let mut out = String::new();
    let mut memo = std::collections::HashMap::new();
    let mut cursor = Some((actuals, 0usize));
    walk_explain(plan, 0, &mut out, Some(provider), &mut memo, &mut cursor);
    out
}

/// The q-error of a cardinality estimate: how far off it was,
/// direction-free, ≥ 1.0 (1.0 = exact). Zero-row sides clamp to one row so
/// empty results stay finite.
fn q_error(est: f64, actual: f64) -> f64 {
    let est = est.max(1.0);
    let actual = actual.max(1.0);
    (est / actual).max(actual / est)
}

/// Render an analyzed node's wall time: sub-millisecond spans keep
/// microsecond resolution, everything else prints as milliseconds.
fn fmt_nanos(nanos: u64) -> String {
    let ms = nanos as f64 / 1e6;
    if ms < 1.0 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{ms:.2}ms")
    }
}

/// Render an estimate figure: integers below a million, engineering-style
/// short form above (`2.5e8`), so huge cross-product estimates stay
/// readable.
fn fmt_est(v: f64) -> String {
    if v < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.2e}")
    }
}

fn walk_explain(
    p: &LogicalPlan,
    depth: usize,
    out: &mut String,
    annotate: Option<&dyn TableProvider>,
    memo: &mut std::collections::HashMap<usize, stats::PlanEst>,
    // (actuals, next pre-order index): consumed in print order, which is
    // exactly the order `execute_analyzed` assigned ids in
    actuals: &mut Option<(&[NodeActual], usize)>,
) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    let mut children: Vec<&LogicalPlan> = Vec::new();
    match p {
        LogicalPlan::Values { rel, projection } => {
            let name = rel.name().unwrap_or("<inline>");
            let _ = write!(out, "Values {name} rows={}", rel.len());
            if let Some(cols) = projection {
                let _ = write!(out, " project=[{}]", cols.join(", "));
            }
        }
        LogicalPlan::Scan { table, projection } => {
            let _ = write!(out, "Scan {table}");
            if let Some(cols) = projection {
                let _ = write!(out, " project=[{}]", cols.join(", "));
            }
            // per-column physical encodings of the base table, with the
            // encoded/plain byte footprint (the live compression ratio)
            if let Some(r) = annotate.and_then(|p| p.table(table)) {
                let encoded: Vec<String> = r
                    .schema()
                    .names()
                    .zip(r.columns().iter())
                    .filter(|(_, c)| c.is_encoded())
                    .map(|(n, c)| {
                        format!(
                            "{n}:{}({}B/{}B)",
                            c.encoding().name(),
                            c.encoded_bytes(),
                            c.plain_bytes()
                        )
                    })
                    .collect();
                if !encoded.is_empty() {
                    let _ = write!(out, " enc=[{}]", encoded.join(", "));
                }
            }
        }
        LogicalPlan::Select { input, predicate } => {
            let _ = write!(out, "Select {predicate}");
            children.push(input);
        }
        LogicalPlan::Project { input, items } => {
            let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
            let _ = write!(out, "Project [{}]", names.join(", "));
            children.push(input);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let _ = write!(out, "Aggregate group_by={group_by:?} aggs={}", aggs.len());
            children.push(input);
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let _ = write!(out, "NaturalJoin");
            children.push(left);
            children.push(right);
        }
        LogicalPlan::JoinOn { left, right, on } => {
            let _ = write!(out, "JoinOn {on:?}");
            children.push(left);
            children.push(right);
        }
        LogicalPlan::Cross { left, right } => {
            let _ = write!(out, "Cross");
            children.push(left);
            children.push(right);
        }
        LogicalPlan::UnionAll { left, right } => {
            let _ = write!(out, "UnionAll");
            children.push(left);
            children.push(right);
        }
        LogicalPlan::Distinct { input } => {
            let _ = write!(out, "Distinct");
            children.push(input);
        }
        LogicalPlan::OrderBy { input, keys } => {
            let _ = write!(out, "OrderBy {keys:?}");
            children.push(input);
        }
        LogicalPlan::Limit { input, n } => {
            let _ = write!(out, "Limit {n}");
            children.push(input);
        }
        LogicalPlan::TopK { input, keys, n } => {
            let _ = write!(out, "TopK {keys:?} n={n}");
            children.push(input);
        }
        LogicalPlan::Rma { op, args, backend } => {
            let orders: Vec<String> = args
                .iter()
                .map(|a| {
                    let mut o = format!("{:?}", a.order);
                    if a.sorted_input {
                        o.push_str(" (sorted: skip sort)");
                    }
                    o
                })
                .collect();
            let _ = write!(
                out,
                "Rma {} BY {}",
                op.name().to_uppercase(),
                orders.join("; ")
            );
            if let Some(b) = backend {
                let _ = write!(out, " backend={b:?}");
            }
            for a in args {
                children.push(&a.input);
            }
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let _ = write!(out, "AssertKey {attrs:?}");
            children.push(input);
        }
    }
    if let Some(provider) = annotate {
        let est = stats::estimate_memo(p, provider, memo);
        let _ = write!(
            out,
            " rows≈{} cost≈{}",
            fmt_est(est.rows),
            fmt_est(est.cost)
        );
        if let Some((acts, cursor)) = actuals {
            let act = acts.get(*cursor).copied().unwrap_or_default();
            *cursor += 1;
            let _ = write!(
                out,
                " actual={} time={} morsels={} q_err={:.2}",
                act.rows,
                fmt_nanos(act.nanos),
                act.morsels,
                q_error(est.rows, act.rows as f64)
            );
            if act.spill_bytes > 0 || act.spill_partitions > 0 {
                let _ = write!(
                    out,
                    " spilled={}B parts={}",
                    act.spill_bytes, act.spill_partitions
                );
            }
            if act.decode_sinks > 0 {
                let _ = write!(out, " sinks={}", act.decode_sinks);
            }
        }
    }
    out.push('\n');
    for child in children {
        walk_explain(child, depth + 1, out, annotate, memo, actuals);
    }
}
