//! The morsel-driven side of the plan interpreter: fused partition-parallel
//! `Scan → Select → Project` pipelines over a [`PartitionedTableProvider`].
//!
//! A pipeline is a chain of row-local operators (σ and generalised π) over
//! a single scan. Because every stage maps each input row independently, the
//! whole chain runs per *morsel* — one contiguous row range of the scanned
//! table — with no synchronisation until the final reassembly. Workers claim
//! morsels from a shared counter ([`rma_relation::WorkerPool::for_each`]), so
//! a selective filter that empties one range simply frees its worker for the
//! next morsel. Workers are the context's session pool
//! ([`rma_relation::WorkerPool`], `ctx.pool()`) — parked between jobs, never
//! respawned per operator. Results are concatenated in range order, which
//! makes the parallel pipeline produce exactly the serial interpreter's
//! rows.
//!
//! Late materialization: a morsel is a *range-SelVec view* over the shared
//! base columns — claiming one copies nothing — and σ/π keep it a view, so
//! the only per-row copying in the whole pipeline is the final
//! range-ordered reassembly ([`Relation::concat`]), which gathers each
//! morsel's surviving rows directly into the output columns.
//!
//! Operators that need cross-partition state — joins, aggregation — are
//! parallelised operator-at-a-time in `exec.rs` (partitioned build/probe and
//! per-worker partial aggregates merged at a barrier); everything else falls
//! back to the serial interpreter.

use super::{LogicalPlan, PartitionedTableProvider, PlanError};
use crate::context::RmaContext;
use rma_relation::{
    self as rel, morsel_count, par::MIN_PARALLEL_ROWS, partition_ranges, Expr, Relation,
};
use std::ops::Range;

/// One row-local pipeline stage. Project items are prepared once, outside
/// the morsel loop, so workers share one expression tree instead of
/// cloning it per morsel.
enum Stage<'a> {
    Select(&'a Expr),
    Project(Vec<(Expr, &'a str)>),
}

/// Try to execute `plan` as a fused partition-parallel pipeline. Returns
/// `None` when the plan is not a `Select`/`Project` chain over a scan, or
/// when the scan yields at most one partition — the caller then runs the
/// serial interpreter.
pub(super) fn try_pipeline(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
) -> Option<Result<Relation, PlanError>> {
    let pool = ctx.pool();
    let threads = pool.threads();

    // peel the row-local stages off the top of the plan
    let mut stages: Vec<Stage> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Select { input, predicate } => {
                stages.push(Stage::Select(predicate));
                cur = input;
            }
            LogicalPlan::Project { input, items } => {
                stages.push(Stage::Project(
                    items.iter().map(|(e, n)| (e.clone(), n.as_str())).collect(),
                ));
                cur = input;
            }
            _ => break,
        }
    }
    if stages.is_empty() {
        return None; // a bare scan gains nothing from fusion
    }
    stages.reverse(); // execute scan-upward

    let (base, projection, ranges): (&Relation, Option<&[String]>, Vec<Range<usize>>) = match cur {
        LogicalPlan::Values { rel, projection } => {
            let r = rel.as_ref();
            (
                r,
                projection.as_deref(),
                partition_ranges(r.len(), morsel_count(threads, r.len())),
            )
        }
        LogicalPlan::Scan { table, projection } => {
            let Some(r) = provider.table(table) else {
                return Some(Err(PlanError::UnknownTable(table.clone())));
            };
            let parts = provider.scan_partitions(table, morsel_count(threads, r.len()))?;
            (r, projection.as_deref(), parts)
        }
        _ => return None,
    };
    if ranges.len() <= 1 || base.len() < MIN_PARALLEL_ROWS {
        return None;
    }
    // scan_partitions is a provider override point: reject malformed ranges
    // here so a stale shard map surfaces as a plan error, not a worker panic
    if ranges.iter().any(|r| r.start > r.end || r.end > base.len()) {
        return Some(Err(PlanError::Plan(format!(
            "scan_partitions returned a range outside 0..{}",
            base.len()
        ))));
    }

    let pipe_span = rel::trace::clock();
    let results = pool.for_each(&ranges, |lane, range| {
        let span = rel::trace::clock();
        let out = run_stages(base, projection, range.clone(), &stages);
        let rows_out = out.as_ref().map_or(0, |r| r.len() as u64);
        rel::trace::record(
            "pipeline.morsel",
            "exec",
            lane,
            span,
            (range.end - range.start) as u64,
            rows_out,
            1,
        );
        out
    });
    // a tripped guard stops morsel claiming mid-pipeline and leaves
    // `results` short — turn that into the typed error before reassembly
    if let Err(e) = rel::guard_checkpoint() {
        return Some(Err(PlanError::Rma(crate::error::RmaError::from(e))));
    }
    let mut parts = Vec::with_capacity(results.len());
    for p in results {
        match p {
            Ok(r) => parts.push(r),
            Err(e) => return Some(Err(e)),
        }
    }
    let out = Relation::concat(&parts).map_err(PlanError::from);
    rel::trace::record(
        "pipeline.fused",
        "exec",
        0,
        pipe_span,
        base.len() as u64,
        out.as_ref().map_or(0, |r| r.len() as u64),
        ranges.len() as u64,
    );
    Some(out)
}

/// Execute the fused stages over one morsel of the base table.
fn run_stages(
    base: &Relation,
    projection: Option<&[String]>,
    range: Range<usize>,
    stages: &[Stage],
) -> Result<Relation, PlanError> {
    let mut part = slice_scan(base, projection, range)?;
    for stage in stages {
        part = match stage {
            Stage::Select(p) => rel::select(&part, p)?,
            Stage::Project(items) => rel::project_exprs(&part, items)?,
        };
    }
    Ok(part)
}

/// One morsel of a (possibly projection-pruned) scan, as a zero-copy
/// range-SelVec view over the shared base columns: nothing is sliced or
/// copied here — pruned columns are dropped by the (equally zero-copy)
/// projection, and the rows a downstream stage actually keeps are gathered
/// once, at the pipeline's reassembly sink. Keeps the relation name,
/// matching the serial `scan_projected`.
fn slice_scan(
    base: &Relation,
    projection: Option<&[String]>,
    range: Range<usize>,
) -> Result<Relation, PlanError> {
    match projection {
        None => Ok(base.slice(range)),
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            Ok(rel::project(base, &refs)?.slice(range))
        }
    }
}
