//! Logical-plan interpreter: walks an (optimized) [`LogicalPlan`] and calls
//! the eager relational-algebra functions and RMA kernels. The eager APIs
//! remain the execution layer; this module only adds plan-level concerns —
//! table resolution, scan-time projection, sortedness hints, per-node
//! backend overrides, and the routing into the morsel-driven parallel
//! engine.
//!
//! Parallel routing: with `ctx.options.threads > 1`, `Scan→Select→Project`
//! chains run as fused partition-parallel pipelines ([`super::par`]), and
//! selections, hash joins, aggregation, sort, and top-k run
//! partition-parallel operator-at-a-time — all on the context's session
//! [`WorkerPool`](rma_relation::WorkerPool) (`ctx.pool()`), never on
//! per-operator thread spawns. Every other operator — and everything at
//! `threads == 1` — takes the serial interpreter below, which is the
//! fallback rule for operators without a parallel implementation.

use super::{par, LogicalPlan, PartitionedTableProvider, PlanError};
use crate::context::{RmaContext, RmaOptions};
use rma_relation::{self as rel, Relation};

/// Execute a logical plan against a table provider.
pub fn execute(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
) -> Result<Relation, PlanError> {
    let pool = ctx.pool();
    if pool.threads() > 1 {
        if let Some(result) = par::try_pipeline(plan, ctx, provider) {
            return result;
        }
    }
    match plan {
        LogicalPlan::Values { rel, projection } => {
            scan_projected(rel.as_ref(), projection.as_deref())
        }
        LogicalPlan::Scan { table, projection } => {
            let r = provider
                .table(table)
                .ok_or_else(|| PlanError::UnknownTable(table.clone()))?;
            scan_projected(r, projection.as_deref())
        }
        LogicalPlan::Select { input, predicate } => {
            let r = execute(input, ctx, provider)?;
            // select_parallel (like the other *_parallel operators) runs
            // the serial operator itself on a single-worker pool
            Ok(rel::select_parallel(&r, predicate, pool)?)
        }
        LogicalPlan::Project { input, items } => {
            let r = execute(input, ctx, provider)?;
            let refs: Vec<(rel::Expr, &str)> =
                items.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
            Ok(rel::project_exprs(&r, &refs)?)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let r = execute(input, ctx, provider)?;
            let gb: Vec<&str> = group_by.iter().map(String::as_str).collect();
            Ok(rel::aggregate_parallel(&r, &gb, aggs, pool)?)
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let l = execute(left, ctx, provider)?;
            let r = execute(right, ctx, provider)?;
            Ok(rel::natural_join_parallel(&l, &r, pool)?)
        }
        LogicalPlan::JoinOn { left, right, on } => {
            let l = execute(left, ctx, provider)?;
            let r = execute(right, ctx, provider)?;
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            Ok(rel::join_on_parallel(&l, &r, &pairs, pool)?)
        }
        LogicalPlan::Cross { left, right } => {
            let l = execute(left, ctx, provider)?;
            let r = execute(right, ctx, provider)?;
            Ok(rel::cross_product(&l, &r)?)
        }
        LogicalPlan::UnionAll { left, right } => {
            let l = execute(left, ctx, provider)?;
            let r = execute(right, ctx, provider)?;
            Ok(rel::union_all(&l, &r)?)
        }
        LogicalPlan::Distinct { input } => {
            let r = execute(input, ctx, provider)?;
            Ok(rel::distinct(&r)?)
        }
        LogicalPlan::OrderBy { input, keys } => {
            let r = execute(input, ctx, provider)?;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            // per-worker local sorts + k-way merge; the result is a view
            Ok(rel::order_by_parallel(&r, &attrs, &dirs, pool)?)
        }
        LogicalPlan::Limit { input, n } => {
            let r = execute(input, ctx, provider)?;
            Ok(rel::limit(&r, *n, 0))
        }
        LogicalPlan::TopK { input, keys, n } => {
            let r = execute(input, ctx, provider)?;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            // per-worker bounded heaps merged at the barrier
            Ok(rel::top_k_parallel(&r, &attrs, &dirs, *n, pool)?)
        }
        LogicalPlan::Rma { op, args, backend } => {
            let expected = if op.is_binary() { 2 } else { 1 };
            if args.len() != expected {
                return Err(PlanError::Plan(format!(
                    "{} expects {expected} argument(s), found {}",
                    op.name(),
                    args.len()
                )));
            }
            // argument subtrees run under the caller's context; only this
            // node's kernel dispatch honours the plan-level backend choice
            let inputs: Vec<Relation> = args
                .iter()
                .map(|a| execute(&a.input, ctx, provider))
                .collect::<Result<_, _>>()?;
            match backend {
                Some(b) if *b != ctx.options.backend => {
                    let sub = ctx.with_options_shared_pool(RmaOptions {
                        backend: *b,
                        ..ctx.options.clone()
                    });
                    let result = dispatch_rma(&sub, *op, args, &inputs);
                    ctx.record(&sub.stats());
                    result
                }
                _ => dispatch_rma(ctx, *op, args, &inputs),
            }
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let r = execute(input, ctx, provider)?;
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            r.require_key(&refs)?;
            Ok(r)
        }
    }
}

fn dispatch_rma(
    ctx: &RmaContext,
    op: crate::shape::RmaOp,
    args: &[super::RmaArg],
    inputs: &[Relation],
) -> Result<Relation, PlanError> {
    let first_order: Vec<&str> = args[0].order.iter().map(String::as_str).collect();
    if op.is_binary() {
        let second_order: Vec<&str> = args[1].order.iter().map(String::as_str).collect();
        Ok(ctx.binary_hinted(
            op,
            &inputs[0],
            &first_order,
            args[0].sorted_input,
            &inputs[1],
            &second_order,
            args[1].sorted_input,
        )?)
    } else {
        Ok(ctx.unary_hinted(op, &inputs[0], &first_order, args[0].sorted_input)?)
    }
}

/// Materialise a scan: project straight off the borrowed relation so a
/// pruned scan never copies the columns it is about to drop.
fn scan_projected(r: &Relation, projection: Option<&[String]>) -> Result<Relation, PlanError> {
    match projection {
        None => Ok(r.clone()),
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            Ok(rel::project(r, &refs)?)
        }
    }
}
