//! Logical-plan interpreter: walks an (optimized) [`LogicalPlan`] and calls
//! the eager relational-algebra functions and RMA kernels. The eager APIs
//! remain the execution layer; this module only adds plan-level concerns —
//! table resolution, scan-time projection, sortedness hints, per-node
//! backend overrides, and the routing into the morsel-driven parallel
//! engine.
//!
//! Parallel routing: with `ctx.options.threads > 1`, `Scan→Select→Project`
//! chains run as fused partition-parallel pipelines ([`super::par`]), and
//! selections, hash joins, aggregation, sort, and top-k run
//! partition-parallel operator-at-a-time — all on the context's session
//! [`WorkerPool`](rma_relation::WorkerPool) (`ctx.pool()`), never on
//! per-operator thread spawns. Every other operator — and everything at
//! `threads == 1` — takes the serial interpreter below, which is the
//! fallback rule for operators without a parallel implementation.
//!
//! Profiling: [`execute_analyzed`] runs the same interpreter with a
//! per-node actuals recorder — output rows, inclusive wall time, and the
//! morsel count the operator dispatched — in the exact pre-order the
//! EXPLAIN tree prints nodes, which is what `EXPLAIN ANALYZE` joins back
//! onto the cost-annotated rendering. Analyzed runs disable pipeline
//! fusion so every plan node is individually attributable (and the tree is
//! identical at any thread count); span recording
//! ([`rma_relation::trace`]) is active in both modes whenever a collector
//! is installed.

use super::{par, LogicalPlan, PartitionedTableProvider, PlanError};
use crate::context::{RmaContext, RmaOptions};
use crate::error::RmaError;
use rma_relation::trace;
use rma_relation::{self as rel, morsel_count, par::MIN_PARALLEL_ROWS, Relation};
use std::cell::RefCell;
use std::time::Instant;

/// Execute a logical plan against a table provider.
///
/// Runs under the calling thread's active
/// [`QueryGuard`](rma_relation::QueryGuard) when one is installed (the
/// serving layer's per-query governor); otherwise, when
/// [`RmaOptions::mem_budget`] or [`RmaOptions::deadline`] is set (or the
/// `RMA_FAULT` fault-injection knob is armed), a guard is minted here for
/// the duration of the plan. Governance trips surface as
/// `PlanError::Rma(RmaError::Cancelled | DeadlineExceeded |
/// ResourceExhausted)`.
pub fn execute(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
) -> Result<Relation, PlanError> {
    let _scope = governor_scope(ctx);
    let result = execute_inner(plan, ctx, provider, None)?;
    charge_result(&result)?;
    Ok(result)
}

/// Mint + activate a per-plan [`rel::QueryGuard`] from the context options
/// when no guard is already governing this thread. Returns the RAII
/// activation (`None` = already governed, or nothing to govern).
fn governor_scope(ctx: &RmaContext) -> Option<rel::ActiveGuard> {
    if rel::current_guard().is_some() {
        return None; // the serving layer already minted this query's guard
    }
    let o = &ctx.options;
    if o.mem_budget == 0 && o.deadline.is_none() && std::env::var_os("RMA_FAULT").is_none() {
        return None;
    }
    let guard = rel::QueryGuard::with_limits(o.deadline, o.mem_budget as u64);
    let scope = guard.activate();
    Some(scope)
}

/// Charge `bytes` of allocation weight against the thread's active guard
/// (no-op when ungoverned). Called at every materialization point in the
/// interpreter; the weights are documented estimates, not measurements —
/// their job is to stop a hopeless query *before* the allocation, not to
/// meter it exactly.
fn charge(bytes: u64) -> Result<(), PlanError> {
    if let Some(g) = rel::current_guard() {
        g.try_charge(bytes).map_err(RmaError::from)?;
    }
    Ok(())
}

/// Charge the final result's materialization footprint (the `collect`
/// sink gathers every column): rows × columns × 8 bytes per cell.
fn charge_result(result: &Relation) -> Result<(), PlanError> {
    charge((result.len() as u64) * (result.schema().len() as u64) * 8)
}

/// Operator-boundary guard check, mapped into the plan error taxonomy.
fn checkpoint() -> Result<(), PlanError> {
    rel::guard_checkpoint().map_err(RmaError::from)?;
    Ok(())
}

/// What one plan node actually did during an analyzed execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeActual {
    /// Rows the node produced.
    pub rows: u64,
    /// Inclusive wall time (the node and its subtree), in nanoseconds.
    pub nanos: u64,
    /// Morsels the operator dispatched (1 for serial operators and inputs
    /// below the parallel threshold).
    pub morsels: u64,
}

/// Execute a plan while recording per-node actuals, returned **in the
/// pre-order [`super::explain`] prints the tree** (node before children;
/// join children left then right; RMA arguments in declaration order).
/// Pipeline fusion is disabled so every node is timed individually — the
/// result relation is still exactly [`execute`]'s.
pub fn execute_analyzed(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
) -> Result<(Relation, Vec<NodeActual>), PlanError> {
    let _scope = governor_scope(ctx);
    let actuals = RefCell::new(Vec::new());
    let out = execute_inner(plan, ctx, provider, Some(&actuals))?;
    charge_result(&out)?;
    Ok((out, actuals.into_inner()))
}

/// The morsel count a claim-based parallel operator dispatches over `len`
/// input rows — 1 whenever the operator would take the serial path.
fn par_morsels(threads: usize, len: usize) -> u64 {
    if threads > 1 && len >= MIN_PARALLEL_ROWS {
        morsel_count(threads, len) as u64
    } else {
        1
    }
}

/// The run ("range-per-worker") count the parallel sort/top-k dispatches.
fn sort_morsels(threads: usize, len: usize) -> u64 {
    if threads > 1 && len >= MIN_PARALLEL_ROWS {
        threads as u64
    } else {
        1
    }
}

/// Static span label for a plan node (trace spans carry `&'static str`).
fn node_label(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Values { .. } => "exec.values",
        LogicalPlan::Scan { .. } => "exec.scan",
        LogicalPlan::Select { .. } => "exec.select",
        LogicalPlan::Project { .. } => "exec.project",
        LogicalPlan::Aggregate { .. } => "exec.aggregate",
        LogicalPlan::NaturalJoin { .. } => "exec.natural_join",
        LogicalPlan::JoinOn { .. } => "exec.join_on",
        LogicalPlan::Cross { .. } => "exec.cross",
        LogicalPlan::UnionAll { .. } => "exec.union_all",
        LogicalPlan::Distinct { .. } => "exec.distinct",
        LogicalPlan::OrderBy { .. } => "exec.order_by",
        LogicalPlan::Limit { .. } => "exec.limit",
        LogicalPlan::TopK { .. } => "exec.top_k",
        LogicalPlan::Rma { .. } => "exec.rma",
        LogicalPlan::AssertKey { .. } => "exec.assert_key",
    }
}

/// The interpreter proper. `analyze` carries the per-node actuals sink of
/// an [`execute_analyzed`] run; plan recursion happens on the submitting
/// thread only (pool jobs run leaf computations), so a `RefCell` suffices.
fn execute_inner(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
    analyze: Option<&RefCell<Vec<NodeActual>>>,
) -> Result<Relation, PlanError> {
    let pool = ctx.pool();
    // operator-boundary governance: a cancelled/expired/over-budget query
    // stops before the next node even when every operator ran serially
    checkpoint()?;
    // fusion collapses Scan→Select→Project chains into one job, which is
    // faster but unattributable per node — analyzed runs keep nodes apart
    if analyze.is_none() && pool.threads() > 1 {
        if let Some(result) = par::try_pipeline(plan, ctx, provider) {
            return result;
        }
    }
    let my_id = analyze.map(|a| {
        let mut v = a.borrow_mut();
        v.push(NodeActual::default());
        v.len() - 1
    });
    let started = analyze.map(|_| Instant::now());
    let span = trace::clock();
    let threads = pool.threads();
    let mut morsels: u64 = 1;
    let result = match plan {
        LogicalPlan::Values { rel, projection } => {
            scan_projected(rel.as_ref(), projection.as_deref())
        }
        LogicalPlan::Scan { table, projection } => {
            let r = provider
                .table(table)
                .ok_or_else(|| PlanError::UnknownTable(table.clone()))?;
            scan_projected(r, projection.as_deref())
        }
        LogicalPlan::Select { input, predicate } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = par_morsels(threads, r.len());
            // select_parallel (like the other *_parallel operators) runs
            // the serial operator itself on a single-worker pool
            Ok(rel::select_parallel(&r, predicate, pool)?)
        }
        LogicalPlan::Project { input, items } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            let refs: Vec<(rel::Expr, &str)> =
                items.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
            Ok(rel::project_exprs(&r, &refs)?)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = par_morsels(threads, r.len());
            // aggregate states: worst case every row is its own group
            // (key + accumulator slots), ~32 bytes each
            charge(32 * r.len() as u64)?;
            let gb: Vec<&str> = group_by.iter().map(String::as_str).collect();
            Ok(rel::aggregate_parallel(&r, &gb, aggs, pool)?)
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            morsels = par_morsels(threads, l.len().max(r.len()));
            // hash build over the right side: bucket + match-list entry
            // per row, ~48 bytes each
            charge(48 * r.len() as u64)?;
            Ok(rel::natural_join_parallel(&l, &r, pool)?)
        }
        LogicalPlan::JoinOn { left, right, on } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            morsels = par_morsels(threads, l.len().max(r.len()));
            charge(48 * r.len() as u64)?;
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            Ok(rel::join_on_parallel(&l, &r, &pairs, pool)?)
        }
        LogicalPlan::Cross { left, right } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            Ok(rel::cross_product(&l, &r)?)
        }
        LogicalPlan::UnionAll { left, right } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            Ok(rel::union_all(&l, &r)?)
        }
        LogicalPlan::Distinct { input } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            Ok(rel::distinct(&r)?)
        }
        LogicalPlan::OrderBy { input, keys } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = sort_morsels(threads, r.len());
            // sort runs + merged permutation: one index per row, 8 bytes
            charge(8 * r.len() as u64)?;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            // per-worker local sorts + k-way merge; the result is a view
            Ok(rel::order_by_parallel(&r, &attrs, &dirs, pool)?)
        }
        LogicalPlan::Limit { input, n } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            Ok(rel::limit(&r, *n, 0))
        }
        LogicalPlan::TopK { input, keys, n } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = sort_morsels(threads, r.len());
            // bounded heaps: n candidates per worker, 8-byte indices
            charge(8 * (*n as u64) * threads as u64)?;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            // per-worker bounded heaps merged at the barrier
            Ok(rel::top_k_parallel(&r, &attrs, &dirs, *n, pool)?)
        }
        LogicalPlan::Rma { op, args, backend } => {
            let expected = if op.is_binary() { 2 } else { 1 };
            if args.len() != expected {
                return Err(PlanError::Plan(format!(
                    "{} expects {expected} argument(s), found {}",
                    op.name(),
                    args.len()
                )));
            }
            // argument subtrees run under the caller's context; only this
            // node's kernel dispatch honours the plan-level backend choice
            let inputs: Vec<Relation> = args
                .iter()
                .map(|a| execute_inner(&a.input, ctx, provider, analyze))
                .collect::<Result<_, _>>()?;
            match backend {
                Some(b) if *b != ctx.options.backend => {
                    let sub = ctx.with_options_shared_pool(RmaOptions {
                        backend: *b,
                        ..ctx.options.clone()
                    });
                    let result = dispatch_rma(&sub, *op, args, &inputs);
                    ctx.record(&sub.stats());
                    result
                }
                _ => dispatch_rma(ctx, *op, args, &inputs),
            }
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            r.require_key(&refs)?;
            Ok(r)
        }
    }?;
    trace::record(
        node_label(plan),
        "exec",
        0,
        span,
        0,
        result.len() as u64,
        morsels,
    );
    if let (Some(id), Some(t0), Some(sink)) = (my_id, started, analyze) {
        sink.borrow_mut()[id] = NodeActual {
            rows: result.len() as u64,
            nanos: t0.elapsed().as_nanos() as u64,
            morsels,
        };
    }
    Ok(result)
}

fn dispatch_rma(
    ctx: &RmaContext,
    op: crate::shape::RmaOp,
    args: &[super::RmaArg],
    inputs: &[Relation],
) -> Result<Relation, PlanError> {
    let first_order: Vec<&str> = args[0].order.iter().map(String::as_str).collect();
    if op.is_binary() {
        let second_order: Vec<&str> = args[1].order.iter().map(String::as_str).collect();
        Ok(ctx.binary_hinted(
            op,
            &inputs[0],
            &first_order,
            args[0].sorted_input,
            &inputs[1],
            &second_order,
            args[1].sorted_input,
        )?)
    } else {
        Ok(ctx.unary_hinted(op, &inputs[0], &first_order, args[0].sorted_input)?)
    }
}

/// Materialise a scan: project straight off the borrowed relation so a
/// pruned scan never copies the columns it is about to drop.
fn scan_projected(r: &Relation, projection: Option<&[String]>) -> Result<Relation, PlanError> {
    match projection {
        None => Ok(r.clone()),
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            Ok(rel::project(r, &refs)?)
        }
    }
}
