//! Logical-plan interpreter: walks an (optimized) [`LogicalPlan`] and calls
//! the eager relational-algebra functions and RMA kernels. The eager APIs
//! remain the execution layer; this module only adds plan-level concerns —
//! table resolution, scan-time projection, sortedness hints, per-node
//! backend overrides, and the routing into the morsel-driven parallel
//! engine.
//!
//! Parallel routing: with `ctx.options.threads > 1`, `Scan→Select→Project`
//! chains run as fused partition-parallel pipelines ([`super::par`]), and
//! selections, hash joins, aggregation, sort, and top-k run
//! partition-parallel operator-at-a-time — all on the context's session
//! [`WorkerPool`](rma_relation::WorkerPool) (`ctx.pool()`), never on
//! per-operator thread spawns. Every other operator — and everything at
//! `threads == 1` — takes the serial interpreter below, which is the
//! fallback rule for operators without a parallel implementation.
//!
//! Profiling: [`execute_analyzed`] runs the same interpreter with a
//! per-node actuals recorder — output rows, inclusive wall time, and the
//! morsel count the operator dispatched — in the exact pre-order the
//! EXPLAIN tree prints nodes, which is what `EXPLAIN ANALYZE` joins back
//! onto the cost-annotated rendering. Analyzed runs disable pipeline
//! fusion so every plan node is individually attributable (and the tree is
//! identical at any thread count); span recording
//! ([`rma_relation::trace`]) is active in both modes whenever a collector
//! is installed.
//!
//! Out-of-core: when a memory budget is set and an operator's estimated
//! working set does not fit the guard's remaining headroom, the
//! interpreter routes joins to the spilling grace hash join, sorts to the
//! external merge sort, and keyed aggregations to the partition-wise
//! spilling aggregate (`rma_relation::algebra`'s `grace_*` /
//! `*_external` operators) instead of failing the query. In-memory
//! operators charge their working set as a *scope* — charged on entry,
//! released when the operator completes — so the budget governs peak
//! operator memory, not the lifetime sum of every materialization the
//! plan ever performed. Spilled bytes are accounted separately
//! ([`rma_relation::QueryGuard::spill_bytes`]) and surface in
//! [`crate::context::ExecStats`] and per-node in [`NodeActual`].

use super::{par, LogicalPlan, PartitionedTableProvider, PlanError};
use crate::context::{RmaContext, RmaOptions};
use crate::error::RmaError;
use rma_relation::trace;
use rma_relation::{self as rel, morsel_count, par::MIN_PARALLEL_ROWS, Relation};
use std::cell::RefCell;
use std::time::Instant;

/// Execute a logical plan against a table provider.
///
/// Runs under the calling thread's active
/// [`QueryGuard`](rma_relation::QueryGuard) when one is installed (the
/// serving layer's per-query governor); otherwise, when
/// [`RmaOptions::mem_budget`] or [`RmaOptions::deadline`] is set (or the
/// `RMA_FAULT` fault-injection knob is armed), a guard is minted here for
/// the duration of the plan. Governance trips surface as
/// `PlanError::Rma(RmaError::Cancelled | DeadlineExceeded |
/// ResourceExhausted)`.
pub fn execute(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
) -> Result<Relation, PlanError> {
    let _scope = governor_scope(ctx);
    let spill0 = spill_snapshot();
    let sinks0 = rma_storage::decode_sink_events();
    let result = execute_inner(plan, ctx, provider, None)?;
    record_spill_delta(ctx, spill0);
    record_sink_delta(ctx, sinks0);
    Ok(result)
}

/// The active guard's spill counters right now (`None` = ungoverned, so
/// nothing can spill).
fn spill_snapshot() -> Option<(u64, u64)> {
    rel::current_guard().map(|g| (g.spill_bytes(), g.spill_partitions()))
}

/// Record how much the plan spilled since `before` into the context's
/// [`crate::context::ExecStats`] — the counters the serving layer's
/// per-session stats and metrics read.
fn record_spill_delta(ctx: &RmaContext, before: Option<(u64, u64)>) {
    let (Some(g), Some((b0, p0))) = (rel::current_guard(), before) else {
        return;
    };
    let bytes = g.spill_bytes().saturating_sub(b0);
    let partitions = g.spill_partitions().saturating_sub(p0);
    if bytes > 0 || partitions > 0 {
        ctx.record(&crate::context::ExecStats {
            spill_bytes: bytes,
            spill_partitions: partitions,
            ..Default::default()
        });
    }
}

/// Record how many forced `decode()` sinks fired since `before` into the
/// context's [`crate::context::ExecStats`]. The underlying counter is
/// process-global and monotonic, so concurrent plans may attribute each
/// other's sinks — fine for the "is this workload staying compressed?"
/// signal the serving metrics expose.
fn record_sink_delta(ctx: &RmaContext, before: u64) {
    let sinks = rma_storage::decode_sink_events().saturating_sub(before);
    if sinks > 0 {
        ctx.record(&crate::context::ExecStats {
            decode_sinks: sinks,
            ..Default::default()
        });
    }
}

/// Mint + activate a per-plan [`rel::QueryGuard`] from the context options
/// when no guard is already governing this thread. Returns the RAII
/// activation (`None` = already governed, or nothing to govern).
fn governor_scope(ctx: &RmaContext) -> Option<rel::ActiveGuard> {
    if rel::current_guard().is_some() {
        return None; // the serving layer already minted this query's guard
    }
    let o = &ctx.options;
    if o.mem_budget == 0 && o.deadline.is_none() && std::env::var_os("RMA_FAULT").is_none() {
        return None;
    }
    let guard = rel::QueryGuard::with_limits(o.deadline, o.mem_budget as u64);
    let scope = guard.activate();
    Some(scope)
}

/// An operator's working memory, charged against the thread's active
/// guard for exactly the operator's lifetime: charged on construction,
/// released on drop (success *and* error paths). The weights are
/// documented estimates, not measurements — their job is to stop (or
/// spill) a hopeless operator *before* the allocation, not to meter it
/// exactly. Scoping is what makes the budget govern *peak* operator
/// memory: a pipeline of modest operators runs under a modest budget,
/// where the old cumulative accounting double-charged every nested
/// materialization point (a hash build deep in the plan stayed charged
/// long after the join freed it).
struct ChargeScope(u64);

impl ChargeScope {
    /// Charge `bytes` (no-op scope when ungoverned); fails with the
    /// guard's typed trip when the charge breaches the budget.
    fn new(bytes: u64) -> Result<ChargeScope, PlanError> {
        match rel::current_guard() {
            Some(g) => {
                g.try_charge(bytes).map_err(RmaError::from)?;
                Ok(ChargeScope(bytes))
            }
            None => Ok(ChargeScope(0)),
        }
    }
}

impl Drop for ChargeScope {
    fn drop(&mut self) {
        if self.0 > 0 {
            if let Some(g) = rel::current_guard() {
                g.release(self.0);
            }
        }
    }
}

/// Should an operator with an estimated working set of `est_bytes` take
/// its spilling implementation? True only when a guard with a finite
/// budget is active and the estimate does not fit the remaining headroom
/// — a pure probe, it never trips the guard itself.
fn should_spill(est_bytes: u64) -> bool {
    match rel::current_guard() {
        Some(g) => !g.fits(est_bytes),
        None => false,
    }
}

/// Operator-boundary guard check, mapped into the plan error taxonomy.
fn checkpoint() -> Result<(), PlanError> {
    rel::guard_checkpoint().map_err(RmaError::from)?;
    Ok(())
}

/// What one plan node actually did during an analyzed execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeActual {
    /// Rows the node produced.
    pub rows: u64,
    /// Inclusive wall time (the node and its subtree), in nanoseconds.
    pub nanos: u64,
    /// Morsels the operator dispatched (1 for serial operators and inputs
    /// below the parallel threshold).
    pub morsels: u64,
    /// Bytes this node's subtree wrote to spill files (inclusive, like
    /// `nanos`); 0 for fully in-memory execution.
    pub spill_bytes: u64,
    /// Spill partitions/runs this node's subtree created (inclusive).
    pub spill_partitions: u64,
    /// Forced `decode()` sink events this node's subtree triggered
    /// (inclusive): encoded columns a kernel could not process in encoded
    /// form and had to materialize. 0 = fully compressed execution.
    pub decode_sinks: u64,
}

/// Execute a plan while recording per-node actuals, returned **in the
/// pre-order [`super::explain`] prints the tree** (node before children;
/// join children left then right; RMA arguments in declaration order).
/// Pipeline fusion is disabled so every node is timed individually — the
/// result relation is still exactly [`execute`]'s.
pub fn execute_analyzed(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
) -> Result<(Relation, Vec<NodeActual>), PlanError> {
    let _scope = governor_scope(ctx);
    let spill0 = spill_snapshot();
    let sinks0 = rma_storage::decode_sink_events();
    let actuals = RefCell::new(Vec::new());
    let out = execute_inner(plan, ctx, provider, Some(&actuals))?;
    record_spill_delta(ctx, spill0);
    record_sink_delta(ctx, sinks0);
    Ok((out, actuals.into_inner()))
}

/// The morsel count a claim-based parallel operator dispatches over `len`
/// input rows — 1 whenever the operator would take the serial path.
fn par_morsels(threads: usize, len: usize) -> u64 {
    if threads > 1 && len >= MIN_PARALLEL_ROWS {
        morsel_count(threads, len) as u64
    } else {
        1
    }
}

/// The run ("range-per-worker") count the parallel sort/top-k dispatches.
fn sort_morsels(threads: usize, len: usize) -> u64 {
    if threads > 1 && len >= MIN_PARALLEL_ROWS {
        threads as u64
    } else {
        1
    }
}

/// Static span label for a plan node (trace spans carry `&'static str`).
fn node_label(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Values { .. } => "exec.values",
        LogicalPlan::Scan { .. } => "exec.scan",
        LogicalPlan::Select { .. } => "exec.select",
        LogicalPlan::Project { .. } => "exec.project",
        LogicalPlan::Aggregate { .. } => "exec.aggregate",
        LogicalPlan::NaturalJoin { .. } => "exec.natural_join",
        LogicalPlan::JoinOn { .. } => "exec.join_on",
        LogicalPlan::Cross { .. } => "exec.cross",
        LogicalPlan::UnionAll { .. } => "exec.union_all",
        LogicalPlan::Distinct { .. } => "exec.distinct",
        LogicalPlan::OrderBy { .. } => "exec.order_by",
        LogicalPlan::Limit { .. } => "exec.limit",
        LogicalPlan::TopK { .. } => "exec.top_k",
        LogicalPlan::Rma { .. } => "exec.rma",
        LogicalPlan::AssertKey { .. } => "exec.assert_key",
    }
}

/// The interpreter proper. `analyze` carries the per-node actuals sink of
/// an [`execute_analyzed`] run; plan recursion happens on the submitting
/// thread only (pool jobs run leaf computations), so a `RefCell` suffices.
fn execute_inner(
    plan: &LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn PartitionedTableProvider,
    analyze: Option<&RefCell<Vec<NodeActual>>>,
) -> Result<Relation, PlanError> {
    let pool = ctx.pool();
    // operator-boundary governance: a cancelled/expired/over-budget query
    // stops before the next node even when every operator ran serially
    checkpoint()?;
    // fusion collapses Scan→Select→Project chains into one job, which is
    // faster but unattributable per node — analyzed runs keep nodes apart
    if analyze.is_none() && pool.threads() > 1 {
        if let Some(result) = par::try_pipeline(plan, ctx, provider) {
            return result;
        }
    }
    let my_id = analyze.map(|a| {
        let mut v = a.borrow_mut();
        v.push(NodeActual::default());
        v.len() - 1
    });
    let started = analyze.map(|_| Instant::now());
    let spill0 = analyze.and_then(|_| spill_snapshot());
    let sinks0 = analyze.map(|_| rma_storage::decode_sink_events());
    let span = trace::clock();
    let threads = pool.threads();
    let mut morsels: u64 = 1;
    let result = match plan {
        LogicalPlan::Values { rel, projection } => {
            scan_projected(rel.as_ref(), projection.as_deref())
        }
        LogicalPlan::Scan { table, projection } => {
            let r = provider
                .table(table)
                .ok_or_else(|| PlanError::UnknownTable(table.clone()))?;
            scan_projected(r, projection.as_deref())
        }
        LogicalPlan::Select { input, predicate } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = par_morsels(threads, r.len());
            // select_parallel (like the other *_parallel operators) runs
            // the serial operator itself on a single-worker pool
            Ok(rel::select_parallel(&r, predicate, pool)?)
        }
        LogicalPlan::Project { input, items } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            let refs: Vec<(rel::Expr, &str)> =
                items.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
            Ok(rel::project_exprs(&r, &refs)?)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = par_morsels(threads, r.len());
            let gb: Vec<&str> = group_by.iter().map(String::as_str).collect();
            if gb.is_empty() {
                // ungrouped: a handful of accumulators, not a table —
                // charging 32 bytes per input row here rejected queries
                // whose working set is actually constant
                let _working = ChargeScope::new(256)?;
                Ok(rel::aggregate_parallel(&r, &gb, aggs, pool)?)
            } else {
                // aggregate states: worst case every row is its own
                // group (key + accumulator slots), ~32 bytes each
                let est = 32 * r.len() as u64;
                if should_spill(est) {
                    Ok(rel::aggregate_external(&r, &gb, aggs, pool)?)
                } else {
                    let _working = ChargeScope::new(est)?;
                    Ok(rel::aggregate_parallel(&r, &gb, aggs, pool)?)
                }
            }
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            morsels = par_morsels(threads, l.len().max(r.len()));
            // hash build over the right side: bucket + match-list entry
            // per row, ~48 bytes each
            let est = 48 * r.len() as u64;
            if should_spill(est) {
                Ok(rel::grace_natural_join(&l, &r, pool)?)
            } else {
                let _build = ChargeScope::new(est)?;
                Ok(rel::natural_join_parallel(&l, &r, pool)?)
            }
        }
        LogicalPlan::JoinOn { left, right, on } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            morsels = par_morsels(threads, l.len().max(r.len()));
            let est = 48 * r.len() as u64;
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            if should_spill(est) {
                Ok(rel::grace_join_on(&l, &r, &pairs, pool)?)
            } else {
                let _build = ChargeScope::new(est)?;
                Ok(rel::join_on_parallel(&l, &r, &pairs, pool)?)
            }
        }
        LogicalPlan::Cross { left, right } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            Ok(rel::cross_product(&l, &r)?)
        }
        LogicalPlan::UnionAll { left, right } => {
            let l = execute_inner(left, ctx, provider, analyze)?;
            let r = execute_inner(right, ctx, provider, analyze)?;
            Ok(rel::union_all(&l, &r)?)
        }
        LogicalPlan::Distinct { input } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            Ok(rel::distinct(&r)?)
        }
        LogicalPlan::OrderBy { input, keys } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = sort_morsels(threads, r.len());
            // sort runs + merged permutation: one index per row, 8 bytes
            let est = 8 * r.len() as u64;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            if should_spill(est) {
                Ok(rel::order_by_external(&r, &attrs, &dirs, pool)?)
            } else {
                let _working = ChargeScope::new(est)?;
                // per-worker local sorts + k-way merge; result is a view
                Ok(rel::order_by_parallel(&r, &attrs, &dirs, pool)?)
            }
        }
        LogicalPlan::Limit { input, n } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            Ok(rel::limit(&r, *n, 0))
        }
        LogicalPlan::TopK { input, keys, n } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            morsels = sort_morsels(threads, r.len());
            // bounded heaps: n candidates per worker, 8-byte indices —
            // already sublinear in the input, so top-k never spills
            let _working = ChargeScope::new(8 * (*n as u64) * threads as u64)?;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            // per-worker bounded heaps merged at the barrier
            Ok(rel::top_k_parallel(&r, &attrs, &dirs, *n, pool)?)
        }
        LogicalPlan::Rma { op, args, backend } => {
            let expected = if op.is_binary() { 2 } else { 1 };
            if args.len() != expected {
                return Err(PlanError::Plan(format!(
                    "{} expects {expected} argument(s), found {}",
                    op.name(),
                    args.len()
                )));
            }
            // argument subtrees run under the caller's context; only this
            // node's kernel dispatch honours the plan-level backend choice
            let inputs: Vec<Relation> = args
                .iter()
                .map(|a| execute_inner(&a.input, ctx, provider, analyze))
                .collect::<Result<_, _>>()?;
            match backend {
                Some(b) if *b != ctx.options.backend => {
                    let sub = ctx.with_options_shared_pool(RmaOptions {
                        backend: *b,
                        ..ctx.options.clone()
                    });
                    let result = dispatch_rma(&sub, *op, args, &inputs);
                    ctx.record(&sub.stats());
                    result
                }
                _ => dispatch_rma(ctx, *op, args, &inputs),
            }
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let r = execute_inner(input, ctx, provider, analyze)?;
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            r.require_key(&refs)?;
            Ok(r)
        }
    }?;
    trace::record(
        node_label(plan),
        "exec",
        0,
        span,
        0,
        result.len() as u64,
        morsels,
    );
    if let (Some(id), Some(t0), Some(sink)) = (my_id, started, analyze) {
        let (spill_bytes, spill_partitions) = match (spill0, spill_snapshot()) {
            (Some((b0, p0)), Some((b1, p1))) => (b1.saturating_sub(b0), p1.saturating_sub(p0)),
            _ => (0, 0),
        };
        let decode_sinks = sinks0
            .map(|s0| rma_storage::decode_sink_events().saturating_sub(s0))
            .unwrap_or(0);
        sink.borrow_mut()[id] = NodeActual {
            rows: result.len() as u64,
            nanos: t0.elapsed().as_nanos() as u64,
            morsels,
            spill_bytes,
            spill_partitions,
            decode_sinks,
        };
    }
    Ok(result)
}

fn dispatch_rma(
    ctx: &RmaContext,
    op: crate::shape::RmaOp,
    args: &[super::RmaArg],
    inputs: &[Relation],
) -> Result<Relation, PlanError> {
    let first_order: Vec<&str> = args[0].order.iter().map(String::as_str).collect();
    if op.is_binary() {
        let second_order: Vec<&str> = args[1].order.iter().map(String::as_str).collect();
        Ok(ctx.binary_hinted(
            op,
            &inputs[0],
            &first_order,
            args[0].sorted_input,
            &inputs[1],
            &second_order,
            args[1].sorted_input,
        )?)
    } else {
        Ok(ctx.unary_hinted(op, &inputs[0], &first_order, args[0].sorted_input)?)
    }
}

/// Materialise a scan: project straight off the borrowed relation so a
/// pruned scan never copies the columns it is about to drop.
fn scan_projected(r: &Relation, projection: Option<&[String]>) -> Result<Relation, PlanError> {
    match projection {
        None => Ok(r.clone()),
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            Ok(rel::project(r, &refs)?)
        }
    }
}
