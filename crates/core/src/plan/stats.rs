//! Cardinality and cost estimation over [`LogicalPlan`]s.
//!
//! Every plan node gets a [`PlanEst`]: an estimated output row count, an
//! accumulated cost (in "rows touched" units), and per-column value
//! statistics (distinct count, numeric min/max, null fraction) propagated
//! from the base-table statistics ([`rma_relation::Statistics`], computed
//! lazily per table and cached on the relation). The estimates drive the
//! cost-based join-order enumerator in [`super::optimize`](mod@super::optimize) and the
//! `rows≈`/`cost≈` annotations of [`super::explain_with_stats`].
//!
//! The estimation rules are the classic textbook ones:
//!
//! - predicate selectivity: `1/V(R, a)` for `a = lit`, linear
//!   interpolation between `min`/`max` for range predicates, `AND`
//!   multiplies, `OR` adds with the overlap subtracted, defaults of 1/3
//!   when statistics cannot decide;
//! - equi-join cardinality: `|R|·|S| / max(V(R,a), V(S,b))` per join
//!   pair (the containment-of-value-sets assumption);
//! - distinct counts never exceed the estimated row count, so filters
//!   shrink downstream join estimates.
//!
//! Estimates are heuristics, not guarantees — the goal is getting the
//! *relative* order of candidate plans right, not exact cardinalities.
//!
//! ```
//! use rma_core::plan::{stats, Frame, NoTables};
//! use rma_relation::{Expr, RelationBuilder};
//!
//! let t = RelationBuilder::new()
//!     .column("k", (0..100i64).collect::<Vec<_>>())
//!     .build()
//!     .unwrap();
//! // `k` is uniform over 100 distinct values, so `k = 7` selects ~1 row
//! let frame = Frame::scan(t).select(Expr::col("k").eq(Expr::lit(7i64)));
//! let est = stats::estimate(frame.logical_plan(), &NoTables);
//! assert!((est.rows - 1.0).abs() < 0.1);
//! ```

use super::{LogicalPlan, TableProvider};
use crate::shape::Dim;
use rma_relation::{BinOp, Expr};
use rma_storage::ColumnStats;
use std::collections::{BTreeMap, HashMap};

/// Selectivity assumed for predicates the statistics cannot decide
/// (System R's classic 1/3).
const DEFAULT_SEL: f64 = 1.0 / 3.0;

/// Row count assumed for tables the provider cannot resolve.
const UNKNOWN_ROWS: f64 = 1000.0;

/// Estimated value statistics of one output column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColEst {
    /// Estimated number of distinct values (≥ 1 for non-empty outputs).
    pub ndv: f64,
    /// Numeric lower bound, when known (integers and floats only).
    pub min: Option<f64>,
    /// Numeric upper bound, when known.
    pub max: Option<f64>,
    /// Estimated fraction of null rows.
    pub null_frac: f64,
}

impl ColEst {
    /// The "know nothing" column estimate: every row distinct, no bounds.
    fn opaque(rows: f64) -> ColEst {
        ColEst {
            ndv: rows.max(1.0),
            min: None,
            max: None,
            null_frac: 0.0,
        }
    }

    fn from_stats(s: &ColumnStats) -> ColEst {
        ColEst {
            ndv: (s.distinct as f64).max(1.0),
            min: s.min.as_ref().and_then(|v| v.as_f64()),
            max: s.max.as_ref().and_then(|v| v.as_f64()),
            null_frac: s.null_fraction(),
        }
    }

    /// Cap the distinct count at a (reduced) row count.
    fn clamp_rows(&self, rows: f64) -> ColEst {
        ColEst {
            ndv: self.ndv.min(rows.max(1.0)),
            ..self.clone()
        }
    }
}

/// Estimated output of a plan node: row count, accumulated cost, and
/// per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEst {
    /// Estimated number of output rows.
    pub rows: f64,
    /// Accumulated cost of producing the output, in rows-touched units:
    /// each node adds the work it performs (scan width-independent row
    /// reads, hash build/probe passes, `n log n` sorts) to its children's
    /// cost.
    pub cost: f64,
    /// Per-column estimates for output columns with known statistics.
    pub cols: BTreeMap<String, ColEst>,
}

impl PlanEst {
    fn opaque(rows: f64, cost: f64) -> PlanEst {
        PlanEst {
            rows,
            cost,
            cols: BTreeMap::new(),
        }
    }

    fn col(&self, name: &str) -> Option<&ColEst> {
        self.cols.get(name)
    }
}

/// Estimate a plan bottom-up. Never fails: unknown tables, opaque RMA
/// schemas, and unsupported predicates fall back to documented defaults.
pub fn estimate(plan: &LogicalPlan, provider: &dyn TableProvider) -> PlanEst {
    estimate_memo(plan, provider, &mut HashMap::new())
}

/// [`estimate`] with a node-identity memo, so callers that estimate many
/// overlapping subtrees of one plan (EXPLAIN annotates every node) walk
/// the tree once instead of once per ancestor. Keys are node addresses,
/// valid for the lifetime of the borrowed plan.
pub(crate) fn estimate_memo(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    memo: &mut HashMap<usize, PlanEst>,
) -> PlanEst {
    let key = plan as *const LogicalPlan as usize;
    if let Some(e) = memo.get(&key) {
        return e.clone();
    }
    let est = compute_estimate(plan, provider, memo);
    memo.insert(key, est.clone());
    est
}

fn compute_estimate(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    memo: &mut HashMap<usize, PlanEst>,
) -> PlanEst {
    match plan {
        LogicalPlan::Values { rel, projection } => {
            leaf_est(rel.statistics(), projection.as_deref())
        }
        LogicalPlan::Scan { table, projection } => match provider.statistics(table) {
            Some(stats) => leaf_est(stats, projection.as_deref()),
            None => PlanEst::opaque(UNKNOWN_ROWS, UNKNOWN_ROWS),
        },
        LogicalPlan::Select { input, predicate } => {
            let input = estimate_memo(input, provider, memo);
            let sel = selectivity(predicate, &input).clamp(0.0, 1.0);
            let rows = (input.rows * sel).max(input.rows.min(1.0));
            PlanEst {
                rows,
                cost: input.cost + input.rows,
                cols: input
                    .cols
                    .iter()
                    .map(|(n, c)| (n.clone(), c.clamp_rows(rows)))
                    .collect(),
            }
        }
        LogicalPlan::Project { input, items } => {
            let input = estimate_memo(input, provider, memo);
            let cols = items
                .iter()
                .map(|(e, name)| {
                    let est = match e {
                        Expr::Col(c) => input
                            .col(c)
                            .cloned()
                            .unwrap_or_else(|| ColEst::opaque(input.rows)),
                        _ => ColEst::opaque(input.rows),
                    };
                    (name.clone(), est)
                })
                .collect();
            PlanEst {
                rows: input.rows,
                cost: input.cost + input.rows,
                cols,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = estimate_memo(input, provider, memo);
            let rows = if group_by.is_empty() {
                1.0
            } else {
                group_by
                    .iter()
                    .map(|g| input.col(g).map_or(input.rows.max(1.0), |c| c.ndv))
                    .product::<f64>()
                    .clamp(1.0, input.rows.max(1.0))
            };
            let mut cols: BTreeMap<String, ColEst> = group_by
                .iter()
                .filter_map(|g| input.col(g).map(|c| (g.clone(), c.clamp_rows(rows))))
                .collect();
            for a in aggs {
                cols.insert(a.output.clone(), ColEst::opaque(rows));
            }
            PlanEst {
                rows,
                cost: input.cost + input.rows,
                cols,
            }
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let l = estimate_memo(left, provider, memo);
            let r = estimate_memo(right, provider, memo);
            // shared column names are the equi-join attributes
            let pairs: Vec<(String, String)> = l
                .cols
                .keys()
                .filter(|n| r.cols.contains_key(*n))
                .map(|n| (n.clone(), n.clone()))
                .collect();
            join_estimate(&l, &r, &pairs)
        }
        LogicalPlan::JoinOn { left, right, on } => {
            let l = estimate_memo(left, provider, memo);
            let r = estimate_memo(right, provider, memo);
            join_estimate(&l, &r, on)
        }
        LogicalPlan::Cross { left, right } => {
            let l = estimate_memo(left, provider, memo);
            let r = estimate_memo(right, provider, memo);
            cross_estimate(&l, &r)
        }
        LogicalPlan::UnionAll { left, right } => {
            let l = estimate_memo(left, provider, memo);
            let r = estimate_memo(right, provider, memo);
            let rows = l.rows + r.rows;
            let cols = l
                .cols
                .iter()
                .map(|(n, c)| {
                    let ndv = c.ndv + r.col(n).map_or(0.0, |rc| rc.ndv);
                    (
                        n.clone(),
                        ColEst {
                            ndv: ndv.min(rows.max(1.0)),
                            ..c.clone()
                        },
                    )
                })
                .collect();
            PlanEst {
                rows,
                cost: l.cost + r.cost + rows,
                cols,
            }
        }
        LogicalPlan::Distinct { input } => {
            let input = estimate_memo(input, provider, memo);
            let rows = if input.cols.is_empty() {
                input.rows
            } else {
                input
                    .cols
                    .values()
                    .map(|c| c.ndv)
                    .product::<f64>()
                    .clamp(1.0_f64.min(input.rows), input.rows)
            };
            PlanEst {
                rows,
                cost: input.cost + input.rows,
                cols: input
                    .cols
                    .iter()
                    .map(|(n, c)| (n.clone(), c.clamp_rows(rows)))
                    .collect(),
            }
        }
        LogicalPlan::OrderBy { input, .. } => {
            let input = estimate_memo(input, provider, memo);
            let sort = input.rows * input.rows.max(2.0).log2();
            PlanEst {
                cost: input.cost + sort,
                ..input
            }
        }
        LogicalPlan::Limit { input, n } => {
            let input = estimate_memo(input, provider, memo);
            let rows = input.rows.min(*n as f64);
            PlanEst {
                rows,
                cost: input.cost,
                cols: input
                    .cols
                    .iter()
                    .map(|(na, c)| (na.clone(), c.clamp_rows(rows)))
                    .collect(),
            }
        }
        LogicalPlan::TopK { input, n, .. } => {
            let input = estimate_memo(input, provider, memo);
            let rows = input.rows.min(*n as f64);
            let heap = input.rows * (*n as f64 + 2.0).log2();
            PlanEst {
                rows,
                cost: input.cost + heap,
                cols: input
                    .cols
                    .iter()
                    .map(|(na, c)| (na.clone(), c.clamp_rows(rows)))
                    .collect(),
            }
        }
        LogicalPlan::AssertKey { input, .. } => {
            let input = estimate_memo(input, provider, memo);
            PlanEst {
                cost: input.cost + input.rows,
                ..input
            }
        }
        LogicalPlan::Rma { op, args, .. } => {
            let children: Vec<PlanEst> = args
                .iter()
                .map(|a| estimate_memo(&a.input, provider, memo))
                .collect();
            let first_rows = children.first().map_or(1.0, |c| c.rows);
            let second_rows = children.get(1).map_or(first_rows, |c| c.rows);
            // application width of an argument, when its column set is known
            let width = |i: usize| -> f64 {
                match (children.get(i), args.get(i)) {
                    (Some(c), Some(a)) if !c.cols.is_empty() => {
                        (c.cols.len() as f64 - a.order.len() as f64).max(1.0)
                    }
                    _ => 8.0, // opaque schema: assume a modest matrix width
                }
            };
            let rows = match op.shape().rows {
                Dim::R1 | Dim::RStar => first_rows,
                Dim::R2 => second_rows,
                Dim::C1 | Dim::CStar => width(0),
                Dim::C2 => width(1),
                Dim::One => 1.0,
            };
            let child_rows: f64 = children.iter().map(|c| c.rows).sum();
            let child_cost: f64 = children.iter().map(|c| c.cost).sum();
            // order-schema handling sorts each argument once
            let sorts: f64 = children
                .iter()
                .map(|c| c.rows * c.rows.max(2.0).log2())
                .sum();
            PlanEst::opaque(rows, child_cost + child_rows + sorts)
        }
    }
}

/// Leaf estimate from table statistics, restricted to a scan projection.
fn leaf_est(stats: &rma_relation::Statistics, projection: Option<&[String]>) -> PlanEst {
    let rows = stats.row_count as f64;
    let cols = stats
        .iter()
        .filter(|(n, _)| projection.is_none_or(|p| p.iter().any(|c| c == n)))
        .map(|(n, s)| (n.to_string(), ColEst::from_stats(s)))
        .collect();
    PlanEst {
        rows,
        cost: rows,
        cols,
    }
}

/// Equi-join estimate: `|L|·|R| / Π max(V(L,a), V(R,b))` over the join
/// pairs (containment of value sets), with hash build + probe + output
/// cost. An empty pair list is a cross product.
pub(crate) fn join_estimate(l: &PlanEst, r: &PlanEst, on: &[(String, String)]) -> PlanEst {
    if on.is_empty() {
        return cross_estimate(l, r);
    }
    let mut rows = l.rows * r.rows;
    for (lc, rc) in on {
        let lndv = l.col(lc).map_or(l.rows.max(1.0), |c| c.ndv);
        let rndv = r.col(rc).map_or(r.rows.max(1.0), |c| c.ndv);
        rows /= lndv.max(rndv).max(1.0);
    }
    let rows = rows.max(l.rows.min(1.0).min(r.rows.min(1.0)));
    let mut cols: BTreeMap<String, ColEst> = BTreeMap::new();
    for (n, c) in l.cols.iter().chain(r.cols.iter()) {
        cols.entry(n.clone()).or_insert_with(|| c.clamp_rows(rows));
    }
    // a join key's value set is contained in the smaller side's
    for (lc, rc) in on {
        if let (Some(a), Some(b)) = (l.col(lc), r.col(rc)) {
            let ndv = a.ndv.min(b.ndv).min(rows.max(1.0));
            for name in [lc, rc] {
                if let Some(c) = cols.get_mut(name) {
                    c.ndv = ndv;
                }
            }
        }
    }
    PlanEst {
        rows,
        cost: l.cost + r.cost + l.rows + r.rows + rows,
        cols,
    }
}

/// Cross-product estimate: row product, column union.
pub(crate) fn cross_estimate(l: &PlanEst, r: &PlanEst) -> PlanEst {
    let rows = l.rows * r.rows;
    let mut cols: BTreeMap<String, ColEst> = BTreeMap::new();
    for (n, c) in l.cols.iter().chain(r.cols.iter()) {
        cols.entry(n.clone()).or_insert_with(|| c.clamp_rows(rows));
    }
    PlanEst {
        rows,
        cost: l.cost + r.cost + rows,
        cols,
    }
}

/// Estimated fraction of rows a predicate keeps, from the input's column
/// statistics. Clamped to `[0, 1]` by the caller.
fn selectivity(e: &Expr, input: &PlanEst) -> f64 {
    match e {
        Expr::Bin(l, BinOp::And, r) => selectivity(l, input) * selectivity(r, input),
        Expr::Bin(l, BinOp::Or, r) => {
            let a = selectivity(l, input).clamp(0.0, 1.0);
            let b = selectivity(r, input).clamp(0.0, 1.0);
            a + b - a * b
        }
        Expr::Not(inner) => 1.0 - selectivity(inner, input).clamp(0.0, 1.0),
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Col(c) => input.col(c).map_or(DEFAULT_SEL, |s| s.null_frac),
            _ => DEFAULT_SEL,
        },
        Expr::Bin(l, op, r) if is_comparison(*op) => comparison_selectivity(l, *op, r, input),
        // boolean column reference used directly as a predicate
        Expr::Col(c) => input
            .col(c)
            .map_or(DEFAULT_SEL, |s| (1.0 - s.null_frac) / s.ndv.clamp(1.0, 2.0)),
        Expr::Lit(v) => match v.as_f64() {
            Some(0.0) => 0.0,
            _ => 1.0,
        },
        _ => DEFAULT_SEL,
    }
}

fn is_comparison(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
    )
}

/// Selectivity of `lhs op rhs` where at least one side is a plain column.
fn comparison_selectivity(lhs: &Expr, op: BinOp, rhs: &Expr, input: &PlanEst) -> f64 {
    match (lhs, rhs) {
        (Expr::Col(c), Expr::Lit(v)) => col_lit_selectivity(input.col(c), op, v.as_f64()),
        (Expr::Lit(v), Expr::Col(c)) => col_lit_selectivity(input.col(c), mirror(op), v.as_f64()),
        (Expr::Col(a), Expr::Col(b)) => {
            let andv = input.col(a).map_or(input.rows.max(1.0), |s| s.ndv);
            let bndv = input.col(b).map_or(input.rows.max(1.0), |s| s.ndv);
            match op {
                BinOp::Eq => 1.0 / andv.max(bndv).max(1.0),
                BinOp::NotEq => 1.0 - 1.0 / andv.max(bndv).max(1.0),
                _ => DEFAULT_SEL,
            }
        }
        _ => DEFAULT_SEL,
    }
}

/// Flip a comparison so the column is on the left: `lit < col` ⇔ `col > lit`.
fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

fn col_lit_selectivity(col: Option<&ColEst>, op: BinOp, lit: Option<f64>) -> f64 {
    let Some(col) = col else { return DEFAULT_SEL };
    match op {
        BinOp::Eq => match (lit, col.min, col.max) {
            // literal provably outside the value range
            (Some(x), Some(mn), Some(mx)) if x < mn || x > mx => 0.0,
            _ => 1.0 / col.ndv.max(1.0),
        },
        BinOp::NotEq => 1.0 - 1.0 / col.ndv.max(1.0),
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let (Some(x), Some(mn), Some(mx)) = (lit, col.min, col.max) else {
                return DEFAULT_SEL;
            };
            // fraction of the value range below the literal, assuming a
            // uniform distribution
            let below = if mx > mn {
                ((x - mn) / (mx - mn)).clamp(0.0, 1.0)
            } else if x < mn {
                0.0
            } else if x > mx {
                1.0
            } else {
                0.5
            };
            match op {
                BinOp::Lt | BinOp::LtEq => below,
                _ => 1.0 - below,
            }
        }
        _ => DEFAULT_SEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NoTables;
    use rma_relation::RelationBuilder;
    use std::sync::Arc;

    fn scan(rows: usize, groups: i64) -> LogicalPlan {
        let rel = RelationBuilder::new()
            .column("k", (0..rows as i64).collect::<Vec<_>>())
            .column(
                "g",
                (0..rows as i64).map(|i| i % groups).collect::<Vec<_>>(),
            )
            .build()
            .unwrap();
        LogicalPlan::Values {
            rel: Arc::new(rel),
            projection: None,
        }
    }

    #[test]
    fn leaf_rows_and_cols() {
        let est = estimate(&scan(500, 10), &NoTables);
        assert_eq!(est.rows, 500.0);
        assert_eq!(est.col("k").unwrap().ndv, 500.0);
        assert_eq!(est.col("g").unwrap().ndv, 10.0);
        assert_eq!(est.col("g").unwrap().min, Some(0.0));
        assert_eq!(est.col("g").unwrap().max, Some(9.0));
    }

    #[test]
    fn equality_selectivity_uses_ndv() {
        let plan = LogicalPlan::Select {
            input: Box::new(scan(1000, 10)),
            predicate: Expr::col("g").eq(Expr::lit(3i64)),
        };
        let est = estimate(&plan, &NoTables);
        assert!((est.rows - 100.0).abs() < 1.0, "rows {}", est.rows);
    }

    #[test]
    fn range_selectivity_interpolates_min_max() {
        let plan = LogicalPlan::Select {
            input: Box::new(scan(1000, 1000)),
            predicate: Expr::col("k").lt(Expr::lit(100i64)),
        };
        let est = estimate(&plan, &NoTables);
        assert!((est.rows - 100.0).abs() < 5.0, "rows {}", est.rows);
    }

    #[test]
    fn out_of_range_equality_estimates_empty() {
        let plan = LogicalPlan::Select {
            input: Box::new(scan(1000, 10)),
            predicate: Expr::col("g").eq(Expr::lit(99i64)),
        };
        let est = estimate(&plan, &NoTables);
        assert!(est.rows <= 1.0, "rows {}", est.rows);
    }

    #[test]
    fn join_estimate_divides_by_larger_ndv() {
        let l = estimate(&scan(1000, 10), &NoTables);
        let r = estimate(&scan(100, 100), &NoTables);
        // join l.g (10 dv) with r.k (100 dv): 1000·100/max(10,100) = 1000
        let e = join_estimate(&l, &r, &[("g".to_string(), "k".to_string())]);
        assert!((e.rows - 1000.0).abs() < 10.0, "rows {}", e.rows);
        // filters shrink downstream joins through the clamped ndv
        assert!(e.cost > l.cost + r.cost);
    }

    #[test]
    fn aggregate_rows_from_group_ndv() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan(1000, 7)),
            group_by: vec!["g".to_string()],
            aggs: vec![],
        };
        let est = estimate(&plan, &NoTables);
        assert!((est.rows - 7.0).abs() < 0.5, "rows {}", est.rows);
    }

    #[test]
    fn unknown_table_defaults() {
        let plan = LogicalPlan::Scan {
            table: "nope".to_string(),
            projection: None,
        };
        let est = estimate(&plan, &NoTables);
        assert_eq!(est.rows, UNKNOWN_ROWS);
        assert!(est.cols.is_empty());
    }
}
