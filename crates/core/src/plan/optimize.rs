//! The shared plan optimizer: every frontend (the lazy [`super::Frame`]
//! builder and the SQL layer) runs these passes over the same
//! [`LogicalPlan`], so cross-operator rewrites apply uniformly.
//!
//! Passes, in order:
//! 1. **Double-transpose elimination** — the paper's cross-algebra rewrite:
//!    `TRA(TRA(r BY u) BY C)` becomes a sort plus a rename.
//! 2. **Selection pushdown** — σ moves below projections, into join inputs,
//!    and below `mmu`/`opd` when the predicate only references the first
//!    argument's order schema (those operations compute each result row
//!    from one input row of the first argument, so filtering commutes).
//! 3. **Selection merging** — directly nested filters collapse to one.
//! 4. **Cost-based join ordering** — trees of inner equi-joins and cross
//!    products are flattened into a join graph and re-enumerated: exact
//!    dynamic programming over connected subsets for up to
//!    [`DP_LIMIT`] relations, a greedy smallest-result-first heuristic
//!    above. Cardinalities come from table statistics via
//!    [`super::stats`]; equi-join connectivity is respected so no cross
//!    product is introduced that the query did not ask for. The original
//!    output column order is restored with an identity projection, so the
//!    rewrite is invisible to everything downstream. Gated on
//!    [`RmaOptions::join_reorder`](crate::RmaOptions::join_reorder).
//! 5. **Projection pushdown** — column requirements propagate to scans,
//!    which prune unused columns at the source.
//! 6. **Limit-into-Sort fusion** — `Limit n` directly over `OrderBy`
//!    becomes a [`LogicalPlan::TopK`] node, executed with a bounded heap in
//!    O(|r| log n) instead of a full O(|r| log |r|) sort.
//! 7. **Redundant-sort elimination** — consecutive RMA operations over the
//!    same order schema sort once: when a node's input is provably sorted
//!    by the node's order schema, the argument is flagged `sorted_input`
//!    and execution skips the sort.
//! 8. **Plan-level backend choice** — when argument sizes are statically
//!    exact, the kernel decision ([`RmaContext::choose_kernel`]) is made at
//!    plan time and recorded on the node (visible in EXPLAIN). Join
//!    ordering runs first, so the kernel decision sees the reordered
//!    (cheaper) argument shapes.
//!
//! ```
//! use rma_core::plan::Frame;
//! use rma_core::RmaContext;
//! use rma_relation::{Expr, RelationBuilder};
//!
//! // a 1000-row fact table and a tiny, heavily filtered dimension
//! let fact = RelationBuilder::new()
//!     .name("fact")
//!     .column("fk", (0..1000i64).map(|i| i % 50).collect::<Vec<_>>())
//!     .column("gk", (0..1000i64).map(|i| i % 20).collect::<Vec<_>>())
//!     .build()
//!     .unwrap();
//! let big = RelationBuilder::new()
//!     .name("big")
//!     .column("gk2", (0..20i64).collect::<Vec<_>>())
//!     .build()
//!     .unwrap();
//! let dim = RelationBuilder::new()
//!     .name("dim")
//!     .column("k", (0..50i64).collect::<Vec<_>>())
//!     .column("p", (0..50i64).collect::<Vec<_>>())
//!     .build()
//!     .unwrap();
//! // written order: fact ⋈ big first; the selective dim filter makes
//! // fact ⋈ dim far smaller, so the optimizer joins dim first
//! let frame = Frame::scan(fact)
//!     .join(Frame::scan(big), &[("gk", "gk2")])
//!     .join(
//!         Frame::scan(dim).select(Expr::col("p").eq(Expr::lit(3i64))),
//!         &[("fk", "k")],
//!     );
//! let plan = frame.explain(&RmaContext::default());
//! assert!(plan.find("Values dim").unwrap() < plan.find("Values big").unwrap());
//! ```

use super::{stats, LogicalPlan, RmaArg, TableProvider};
use crate::context::{RmaContext, SortPolicy};
use crate::shape::{Dim, RmaOp};
use rma_relation::{BinOp, Expr, Schema};
use std::collections::BTreeSet;

/// Optimize a plan under the given execution context (whose sort policy and
/// backend options steer the sort- and kernel-level passes) and provider
/// (whose schemas and statistics inform column- and cost-dependent
/// rewrites).
pub fn optimize(plan: LogicalPlan, ctx: &RmaContext, provider: &dyn TableProvider) -> LogicalPlan {
    let plan = eliminate_double_transpose(plan, provider);
    let plan = push_selections(plan, ctx, provider);
    let plan = merge_selections(plan);
    let plan = if ctx.options.join_reorder {
        reorder_joins(plan, provider)
    } else {
        plan
    };
    let plan = prune_projections(plan, None, provider);
    let plan = fuse_top_k(plan);
    let plan = if ctx.options.sort_policy == SortPolicy::Optimized {
        mark_sorted_inputs(plan).0
    } else {
        // the Always policy is the paper's unoptimised baseline: keep every
        // materialised sort so ablations measure what they claim to
        plan
    };
    choose_backends(plan, ctx, provider)
}

// ---------------------------------------------------------------------
// Schema inference helpers
// ---------------------------------------------------------------------

/// Output column names of a plan, if statically known.
pub fn output_columns(plan: &LogicalPlan, provider: &dyn TableProvider) -> Option<Vec<String>> {
    match plan {
        LogicalPlan::Values { rel, projection } => Some(match projection {
            Some(p) => p.clone(),
            None => rel.schema().names().map(str::to_string).collect(),
        }),
        LogicalPlan::Scan { table, projection } => match projection {
            Some(p) => Some(p.clone()),
            None => provider
                .table(table)
                .map(|r| r.schema().names().map(str::to_string).collect()),
        },
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::TopK { input, .. }
        | LogicalPlan::AssertKey { input, .. } => output_columns(input, provider),
        LogicalPlan::Project { items, .. } => Some(items.iter().map(|(_, n)| n.clone()).collect()),
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let mut out = group_by.clone();
            out.extend(aggs.iter().map(|a| a.output.clone()));
            Some(out)
        }
        LogicalPlan::NaturalJoin { left, right } => {
            let l = output_columns(left, provider)?;
            let r = output_columns(right, provider)?;
            let mut out = l.clone();
            out.extend(r.into_iter().filter(|n| !l.contains(n)));
            Some(out)
        }
        LogicalPlan::JoinOn { left, right, .. } | LogicalPlan::Cross { left, right } => {
            let mut out = output_columns(left, provider)?;
            out.extend(output_columns(right, provider)?);
            Some(out)
        }
        LogicalPlan::UnionAll { left, .. } => output_columns(left, provider),
        // RMA output schemas depend on data values (column casts); treat as
        // opaque
        LogicalPlan::Rma { .. } => None,
    }
}

/// Follow pass-through nodes (filter/sort/limit/distinct/assert) down to a
/// scan and return its schema; `None` when the subtree recomputes columns
/// (projection, aggregation, joins, RMA) or the scan prunes columns.
fn pass_through_scan_schema<'a>(
    plan: &'a LogicalPlan,
    provider: &'a dyn TableProvider,
) -> Option<&'a Schema> {
    match plan {
        LogicalPlan::Values {
            rel,
            projection: None,
        } => Some(rel.schema()),
        LogicalPlan::Scan {
            table,
            projection: None,
        } => provider.table(table).map(|r| r.schema()),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::TopK { input, .. }
        | LogicalPlan::AssertKey { input, .. } => pass_through_scan_schema(input, provider),
        _ => None,
    }
}

fn refs_subset(e: &Expr, cols: &[String]) -> bool {
    let mut refs = Vec::new();
    e.referenced_columns(&mut refs);
    refs.iter().all(|r| cols.contains(r))
}

/// Split a predicate into AND-conjuncts.
fn conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(l, BinOp::And, r) => {
            let mut out = conjuncts(*l);
            out.extend(conjuncts(*r));
            out
        }
        other => vec![other],
    }
}

/// Recombine conjuncts with AND.
fn combine(mut es: Vec<Expr>) -> Option<Expr> {
    let first = es.pop()?;
    Some(es.into_iter().fold(first, |acc, e| acc.and(e)))
}

// ---------------------------------------------------------------------
// Pass 1: cross-algebra double-transpose elimination
// ---------------------------------------------------------------------

/// `TRA(TRA(r BY u) BY C)` is the input sorted by `u` with `u` renamed to
/// `C` (the paper's Figure 10), so two matrix transposes — each a full
/// element shuffle — are replaced by a sort and a rename. The inner
/// operation's order-schema validation is preserved with an
/// [`LogicalPlan::AssertKey`] node, and the application schema must be
/// statically known and numeric (otherwise the plan is left untouched, so
/// the original error still surfaces).
fn eliminate_double_transpose(plan: LogicalPlan, provider: &dyn TableProvider) -> LogicalPlan {
    // rewrite bottom-up
    let plan = plan.map_children(&mut |p| eliminate_double_transpose(p, provider));
    let LogicalPlan::Rma {
        op: RmaOp::Tra,
        args,
        backend,
    } = plan
    else {
        return plan;
    };
    let rebuild = |args: Vec<RmaArg>| LogicalPlan::Rma {
        op: RmaOp::Tra,
        args,
        backend,
    };
    if args
        .first()
        .is_none_or(|a| a.order.as_slice() != ["C".to_string()])
    {
        return rebuild(args);
    }
    let LogicalPlan::Rma {
        op: RmaOp::Tra,
        args: inner_args,
        ..
    } = args[0].input.as_ref()
    else {
        return rebuild(args);
    };
    let Some(inner_first) = inner_args.first() else {
        return rebuild(args);
    };
    let (inner_input, inner_order) = (&inner_first.input, &inner_first.order);
    if inner_order.len() != 1 {
        return rebuild(args);
    }
    let Some(cols) = output_columns(inner_input, provider) else {
        return rebuild(args);
    };
    let u = inner_order[0].clone();
    if !cols.contains(&u) {
        return rebuild(args);
    }
    // the original would reject non-numeric application attributes; only
    // rewrite when the base schema proves they are numeric
    match pass_through_scan_schema(inner_input, provider) {
        Some(schema)
            if schema
                .attributes()
                .iter()
                .filter(|a| a.name() != u)
                .all(|a| a.dtype().is_numeric()) => {}
        _ => return rebuild(args),
    }
    // Project: u renamed to C; application columns in sorted name order —
    // the outer transpose names its columns via the column cast ▽ of the
    // inner C column, which is sorted
    let mut items: Vec<(Expr, String)> = vec![(Expr::Col(u.clone()), "C".to_string())];
    let mut app: Vec<&String> = cols.iter().filter(|c| **c != u).collect();
    app.sort();
    for c in app {
        items.push((Expr::Col(c.clone()), c.clone()));
    }
    LogicalPlan::Project {
        items,
        input: Box::new(LogicalPlan::OrderBy {
            keys: vec![(u.clone(), true)],
            input: Box::new(LogicalPlan::AssertKey {
                attrs: vec![u],
                input: inner_input.clone(),
            }),
        }),
    }
}

// ---------------------------------------------------------------------
// Pass 2: selection pushdown
// ---------------------------------------------------------------------

fn push_selections(
    plan: LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn TableProvider,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Select { input, predicate } => {
            let input = push_selections(*input, ctx, provider);
            push_one_selection(predicate, input, ctx, provider)
        }
        other => other.map_children(&mut |p| push_selections(p, ctx, provider)),
    }
}

/// Push one selection's conjuncts as deep as legal.
fn push_one_selection(
    predicate: Expr,
    input: LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn TableProvider,
) -> LogicalPlan {
    match input {
        // σ over × / ⋈: conjuncts referencing one side only move there
        LogicalPlan::Cross { left, right } => {
            push_into_join(predicate, *left, *right, ctx, provider, |l, r| {
                LogicalPlan::Cross {
                    left: Box::new(l),
                    right: Box::new(r),
                }
            })
        }
        LogicalPlan::JoinOn { left, right, on } => {
            push_into_join(predicate, *left, *right, ctx, provider, move |l, r| {
                LogicalPlan::JoinOn {
                    left: Box::new(l),
                    right: Box::new(r),
                    on: on.clone(),
                }
            })
        }
        LogicalPlan::NaturalJoin { left, right } => {
            push_into_join(predicate, *left, *right, ctx, provider, |l, r| {
                LogicalPlan::NaturalJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                }
            })
        }
        // σ over π: push through when the projection passes the referenced
        // columns unchanged (identity items)
        LogicalPlan::Project {
            input: inner,
            items,
        } => {
            let identity: Vec<String> = items
                .iter()
                .filter_map(|(e, n)| match e {
                    Expr::Col(c) if c == n => Some(n.clone()),
                    _ => None,
                })
                .collect();
            if refs_subset(&predicate, &identity) {
                let pushed = push_one_selection(predicate, *inner, ctx, provider);
                LogicalPlan::Project {
                    input: Box::new(pushed),
                    items,
                }
            } else {
                LogicalPlan::Select {
                    input: Box::new(LogicalPlan::Project {
                        input: inner,
                        items,
                    }),
                    predicate,
                }
            }
        }
        // σ over mmu/opd: each result row is computed from one row of the
        // first argument (row i is µU(r)[i] combined with all of s), so a
        // predicate over the first order schema commutes with the
        // operation. The order schema of the *unfiltered* argument must
        // still be validated as a key, which the inserted AssertKey
        // preserves.
        LogicalPlan::Rma {
            op,
            mut args,
            backend,
        } if matches!(op, RmaOp::Mmu | RmaOp::Opd) && !args.is_empty() => {
            let order = args[0].order.clone();
            let mut pushable = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts(predicate) {
                if refs_subset(&c, &order) {
                    pushable.push(c);
                } else {
                    keep.push(c);
                }
            }
            if let Some(p) = combine(pushable) {
                let inner = std::mem::replace(
                    &mut *args[0].input,
                    LogicalPlan::Scan {
                        table: String::new(),
                        projection: None,
                    },
                );
                let inner = if ctx.options.validate_keys {
                    LogicalPlan::AssertKey {
                        attrs: order,
                        input: Box::new(inner),
                    }
                } else {
                    inner
                };
                *args[0].input = push_one_selection(p, inner, ctx, provider);
            }
            let node = LogicalPlan::Rma { op, args, backend };
            match combine(keep) {
                Some(p) => LogicalPlan::Select {
                    input: Box::new(node),
                    predicate: p,
                },
                None => node,
            }
        }
        other => LogicalPlan::Select {
            input: Box::new(other),
            predicate,
        },
    }
}

fn push_into_join(
    predicate: Expr,
    left: LogicalPlan,
    right: LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn TableProvider,
    rebuild: impl FnOnce(LogicalPlan, LogicalPlan) -> LogicalPlan,
) -> LogicalPlan {
    let lcols = output_columns(&left, provider);
    let rcols = output_columns(&right, provider);
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut keep = Vec::new();
    for c in conjuncts(predicate) {
        if let Some(lc) = &lcols {
            if refs_subset(&c, lc) {
                to_left.push(c);
                continue;
            }
        }
        if let Some(rc) = &rcols {
            if refs_subset(&c, rc) {
                to_right.push(c);
                continue;
            }
        }
        keep.push(c);
    }
    let left = wrap_selection(left, to_left, ctx, provider);
    let right = wrap_selection(right, to_right, ctx, provider);
    let joined = rebuild(left, right);
    match combine(keep) {
        Some(p) => LogicalPlan::Select {
            input: Box::new(joined),
            predicate: p,
        },
        None => joined,
    }
}

fn wrap_selection(
    plan: LogicalPlan,
    preds: Vec<Expr>,
    ctx: &RmaContext,
    provider: &dyn TableProvider,
) -> LogicalPlan {
    match combine(preds) {
        // keep pushing further down the side
        Some(p) => push_one_selection(p, plan, ctx, provider),
        None => plan,
    }
}

// ---------------------------------------------------------------------
// Pass 3: merge directly nested selections
// ---------------------------------------------------------------------

fn merge_selections(plan: LogicalPlan) -> LogicalPlan {
    let plan = plan.map_children(&mut merge_selections);
    if let LogicalPlan::Select { input, predicate } = plan {
        if let LogicalPlan::Select {
            input: inner,
            predicate: p2,
        } = *input
        {
            LogicalPlan::Select {
                input: inner,
                predicate: predicate.and(p2),
            }
        } else {
            LogicalPlan::Select { input, predicate }
        }
    } else {
        plan
    }
}

// ---------------------------------------------------------------------
// Pass 4: cost-based join ordering
// ---------------------------------------------------------------------

/// Largest join-graph size ordered by exact dynamic programming; bigger
/// graphs use the greedy smallest-result-first heuristic.
pub const DP_LIMIT: usize = 8;

/// Largest join-graph size the enumerator touches at all; beyond this the
/// written order is kept.
const ENUM_LIMIT: usize = 64;

/// A flattened tree of inner equi-joins: the joined inputs (anything that
/// is not itself a `JoinOn`/`Cross`), their output columns, and the
/// equi-join edges between them.
struct JoinGraph {
    leaves: Vec<LogicalPlan>,
    cols: Vec<Vec<String>>,
    /// `(leaf a, column of a, leaf b, column of b)` — one per equi pair.
    edges: Vec<(usize, String, usize, String)>,
}

/// Reorder every maximal `JoinOn`/`Cross` tree in the plan by estimated
/// cost. Runs after selection pushdown, so single-table filters are part
/// of the leaves and their selectivity steers the order. A join node is
/// flattened together with its whole join subtree — recursion descends
/// into the tree's *leaves*, never into its internal join nodes, so the
/// enumerator always sees the maximal graph.
fn reorder_joins(plan: LogicalPlan, provider: &dyn TableProvider) -> LogicalPlan {
    match plan {
        LogicalPlan::JoinOn { .. } | LogicalPlan::Cross { .. } => reorder_one_tree(plan, provider),
        other => other.map_children(&mut |p| reorder_joins(p, provider)),
    }
}

/// Reorder one flattened join tree, or return it unchanged when the
/// rewrite cannot be proven safe (unknown leaf schemas, duplicate column
/// names) or does not change the plan.
fn reorder_one_tree(plan: LogicalPlan, provider: &dyn TableProvider) -> LogicalPlan {
    let original = plan.clone();
    // join trees nested below non-join operators (inside a subquery leaf)
    // still get their own reorder pass
    let recurse_into_children =
        |p: LogicalPlan| p.map_children(&mut |c| reorder_joins(c, provider));
    let mut graph = JoinGraph {
        leaves: Vec::new(),
        cols: Vec::new(),
        edges: Vec::new(),
    };
    if flatten_joins(plan, provider, &mut graph).is_none() {
        return recurse_into_children(original);
    }
    let n = graph.leaves.len();
    if !(2..=ENUM_LIMIT).contains(&n) {
        return recurse_into_children(original);
    }
    // the rewrite addresses every column by name across the whole tree, so
    // names must be globally unique (a duplicate would also make the
    // original join's output schema ambiguous)
    {
        let mut seen = BTreeSet::new();
        for cols in &graph.cols {
            for c in cols {
                if !seen.insert(c.as_str()) {
                    return recurse_into_children(original);
                }
            }
        }
    }
    graph.leaves = graph
        .leaves
        .into_iter()
        .map(|l| reorder_joins(l, provider))
        .collect();
    let ests: Vec<stats::PlanEst> = graph
        .leaves
        .iter()
        .map(|l| stats::estimate(l, provider))
        .collect();
    // order each connected component (no cross products inside), then
    // cross-join components smallest-first
    let mut components = connected_components(n, &graph.edges);
    let mut ordered: Vec<(LogicalPlan, stats::PlanEst)> = components
        .drain(..)
        .map(|comp| {
            if comp.len() <= DP_LIMIT {
                order_component_dp(&comp, &graph, &ests)
            } else {
                order_component_greedy(&comp, &graph, &ests)
            }
        })
        .collect();
    ordered.sort_by(|a, b| a.1.rows.total_cmp(&b.1.rows));
    let mut it = ordered.into_iter();
    let (mut best, mut best_est) = it.next().expect("n >= 2 leaves");
    for (next, next_est) in it {
        best_est = stats::cross_estimate(&best_est, &next_est);
        best = LogicalPlan::Cross {
            left: Box::new(best),
            right: Box::new(next),
        };
    }
    // no-change detection via the rendered plan shape: `LogicalPlan`'s
    // derived PartialEq would descend into `Values` leaves and compare
    // full column data, while `explain` prints structure only (leaves
    // render as name + row count, and an unchanged leaf is the same Arc)
    if super::explain(&best) == super::explain(&original) {
        return original;
    }
    // restore the written output column order with an identity projection
    let orig_cols: Vec<String> = graph.cols.concat();
    LogicalPlan::Project {
        items: orig_cols
            .into_iter()
            .map(|c| (Expr::Col(c.clone()), c))
            .collect(),
        input: Box::new(best),
    }
}

/// Flatten a `JoinOn`/`Cross` tree into `graph`, returning the leaf
/// indices of this subtree (`None` bails: unknown leaf schema, or an
/// equi-join column that cannot be attributed to exactly one leaf).
fn flatten_joins(
    plan: LogicalPlan,
    provider: &dyn TableProvider,
    graph: &mut JoinGraph,
) -> Option<Vec<usize>> {
    match plan {
        LogicalPlan::JoinOn { left, right, on } => {
            let ls = flatten_joins(*left, provider, graph)?;
            let rs = flatten_joins(*right, provider, graph)?;
            for (lc, rc) in on {
                let li = owning_leaf(&graph.cols, &ls, &lc)?;
                let ri = owning_leaf(&graph.cols, &rs, &rc)?;
                graph.edges.push((li, lc, ri, rc));
            }
            Some([ls, rs].concat())
        }
        LogicalPlan::Cross { left, right } => {
            let ls = flatten_joins(*left, provider, graph)?;
            let rs = flatten_joins(*right, provider, graph)?;
            Some([ls, rs].concat())
        }
        leaf => {
            let cols = output_columns(&leaf, provider)?;
            graph.cols.push(cols);
            graph.leaves.push(leaf);
            Some(vec![graph.leaves.len() - 1])
        }
    }
}

/// The unique leaf among `among` providing column `col`.
fn owning_leaf(cols: &[Vec<String>], among: &[usize], col: &str) -> Option<usize> {
    let mut found = None;
    for &i in among {
        if cols[i].iter().any(|c| c == col) {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

/// Partition leaves into connected components of the equi-join graph.
fn connected_components(n: usize, edges: &[(usize, String, usize, String)]) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn root(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (a, _, b, _) in edges {
        let (ra, rb) = (root(&mut parent, *a), root(&mut parent, *b));
        parent[ra] = rb;
    }
    let mut comps: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = root(&mut parent, i);
        comps.entry(r).or_default().push(i);
    }
    comps.into_values().collect()
}

/// The equi pairs between two leaf sets, oriented `(left side, right
/// side)`.
fn pairs_between(
    graph: &JoinGraph,
    left: impl Fn(usize) -> bool,
    right: impl Fn(usize) -> bool,
) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for (a, ca, b, cb) in &graph.edges {
        if left(*a) && right(*b) {
            pairs.push((ca.clone(), cb.clone()));
        } else if left(*b) && right(*a) {
            pairs.push((cb.clone(), ca.clone()));
        }
    }
    pairs
}

/// Build the join of two ordered subplans, orienting the side with fewer
/// estimated rows as the *right* input — [`rma_relation::join_on`] builds
/// its hash table on the right side, so the smaller input should be the
/// build side. `pairs` are `(a column, b column)` and are flipped with the
/// operands.
fn build_join(
    a_plan: &LogicalPlan,
    a_est: &stats::PlanEst,
    b_plan: &LogicalPlan,
    b_est: &stats::PlanEst,
    pairs: Vec<(String, String)>,
) -> (LogicalPlan, stats::PlanEst) {
    let est = stats::join_estimate(a_est, b_est, &pairs);
    let (left, right, on) = if b_est.rows <= a_est.rows {
        (a_plan, b_plan, pairs)
    } else {
        (
            b_plan,
            a_plan,
            pairs.into_iter().map(|(l, r)| (r, l)).collect(),
        )
    };
    let plan = LogicalPlan::JoinOn {
        left: Box::new(left.clone()),
        right: Box::new(right.clone()),
        on,
    };
    (plan, est)
}

/// Exact join-order search over one connected component: dynamic
/// programming over connected subsets, minimising the accumulated cost of
/// [`stats::join_estimate`]. `comp` has at most [`DP_LIMIT`] leaves, so
/// the table has at most `2^8` entries.
fn order_component_dp(
    comp: &[usize],
    graph: &JoinGraph,
    ests: &[stats::PlanEst],
) -> (LogicalPlan, stats::PlanEst) {
    let k = comp.len();
    let mut best: Vec<Option<(LogicalPlan, stats::PlanEst)>> = vec![None; 1 << k];
    for (li, &leaf) in comp.iter().enumerate() {
        best[1 << li] = Some((graph.leaves[leaf].clone(), ests[leaf].clone()));
    }
    let in_mask = |mask: usize, leaf: usize| {
        comp.iter()
            .position(|&l| l == leaf)
            .is_some_and(|li| mask & (1 << li) != 0)
    };
    for mask in 1usize..(1 << k) {
        if mask.count_ones() < 2 {
            continue;
        }
        let low = mask & mask.wrapping_neg();
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            // enumerate each unordered split once — build_join decides
            // the probe/build orientation from the row estimates
            if sub & low != 0 {
                let other = mask ^ sub;
                if let (Some((lp, le)), Some((rp, re))) = (&best[sub], &best[other]) {
                    let pairs = pairs_between(graph, |l| in_mask(sub, l), |l| in_mask(other, l));
                    if !pairs.is_empty() {
                        let (plan, est) = build_join(lp, le, rp, re, pairs);
                        if best[mask].as_ref().is_none_or(|(_, b)| est.cost < b.cost) {
                            best[mask] = Some((plan, est));
                        }
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
    }
    best[(1 << k) - 1]
        .take()
        .expect("a connected component always has a connected join order")
}

/// Greedy fallback above [`DP_LIMIT`]: repeatedly join the connected pair
/// with the smallest estimated result, smallest-first — O(n³) pair scans,
/// no exponential table.
fn order_component_greedy(
    comp: &[usize],
    graph: &JoinGraph,
    ests: &[stats::PlanEst],
) -> (LogicalPlan, stats::PlanEst) {
    struct Part {
        leaves: Vec<usize>,
        plan: LogicalPlan,
        est: stats::PlanEst,
    }
    /// The pair the next round merges: indices, pairs, combined estimate.
    type Pick = (usize, usize, Vec<(String, String)>, stats::PlanEst);
    let mut parts: Vec<Part> = comp
        .iter()
        .map(|&l| Part {
            leaves: vec![l],
            plan: graph.leaves[l].clone(),
            est: ests[l].clone(),
        })
        .collect();
    while parts.len() > 1 {
        let mut pick: Option<Pick> = None;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let pairs = pairs_between(
                    graph,
                    |l| parts[i].leaves.contains(&l),
                    |l| parts[j].leaves.contains(&l),
                );
                if pairs.is_empty() {
                    continue;
                }
                let est = stats::join_estimate(&parts[i].est, &parts[j].est, &pairs);
                if pick.as_ref().is_none_or(|(_, _, _, b)| est.rows < b.rows) {
                    pick = Some((i, j, pairs, est));
                }
            }
        }
        let (i, j, pairs, _) = pick.expect("a connected component always has a connected pair");
        let b = parts.swap_remove(j);
        let a = parts.swap_remove(i);
        let (plan, est) = build_join(&a.plan, &a.est, &b.plan, &b.est, pairs);
        let mut leaves = a.leaves;
        leaves.extend(b.leaves);
        parts.push(Part { leaves, plan, est });
    }
    let p = parts.pop().expect("non-empty component");
    (p.plan, p.est)
}

// ---------------------------------------------------------------------
// Pass 5: projection pushdown into scans
// ---------------------------------------------------------------------

/// Propagate the set of columns required from above down to scans; a scan
/// that provides more prunes itself. `None` means "all columns".
fn prune_projections(
    plan: LogicalPlan,
    required: Option<&BTreeSet<String>>,
    provider: &dyn TableProvider,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Values { rel, projection } => {
            let projection = narrow_scan(
                projection,
                rel.schema().names().map(str::to_string),
                required,
            );
            LogicalPlan::Values { rel, projection }
        }
        LogicalPlan::Scan { table, projection } => {
            let schema_names: Option<Vec<String>> = provider
                .table(&table)
                .map(|r| r.schema().names().map(str::to_string).collect());
            let projection = match schema_names {
                Some(names) => narrow_scan(projection, names.into_iter(), required),
                None => projection,
            };
            LogicalPlan::Scan { table, projection }
        }
        LogicalPlan::Project { input, items } => {
            let mut needed = BTreeSet::new();
            for (e, _) in &items {
                let mut refs = Vec::new();
                e.referenced_columns(&mut refs);
                needed.extend(refs);
            }
            LogicalPlan::Project {
                input: Box::new(prune_projections(*input, Some(&needed), provider)),
                items,
            }
        }
        LogicalPlan::Select { input, predicate } => {
            let merged = required.map(|req| {
                let mut needed = req.clone();
                let mut refs = Vec::new();
                predicate.referenced_columns(&mut refs);
                needed.extend(refs);
                needed
            });
            LogicalPlan::Select {
                input: Box::new(prune_projections(*input, merged.as_ref(), provider)),
                predicate,
            }
        }
        LogicalPlan::OrderBy { input, keys } => {
            let merged = required.map(|req| {
                let mut needed = req.clone();
                needed.extend(keys.iter().map(|(k, _)| k.clone()));
                needed
            });
            LogicalPlan::OrderBy {
                input: Box::new(prune_projections(*input, merged.as_ref(), provider)),
                keys,
            }
        }
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune_projections(*input, required, provider)),
            n,
        },
        LogicalPlan::TopK { input, keys, n } => {
            let merged = required.map(|req| {
                let mut needed = req.clone();
                needed.extend(keys.iter().map(|(k, _)| k.clone()));
                needed
            });
            LogicalPlan::TopK {
                input: Box::new(prune_projections(*input, merged.as_ref(), provider)),
                keys,
                n,
            }
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let merged = required.map(|req| {
                let mut needed = req.clone();
                needed.extend(attrs.iter().cloned());
                needed
            });
            LogicalPlan::AssertKey {
                input: Box::new(prune_projections(*input, merged.as_ref(), provider)),
                attrs,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // the aggregate defines its own requirements, regardless of
            // what is needed above it
            let mut needed: BTreeSet<String> = group_by.iter().cloned().collect();
            needed.extend(aggs.iter().filter_map(|a| a.input.clone()));
            LogicalPlan::Aggregate {
                input: Box::new(prune_projections(*input, Some(&needed), provider)),
                group_by,
                aggs,
            }
        }
        // duplicate elimination is over the full row; joins, unions, and
        // RMA operations consume every column of their inputs — recurse
        // with no requirement so nothing below is pruned incorrectly
        other => other.map_children(&mut |p| prune_projections(p, None, provider)),
    }
}

/// Narrow a scan's projection to the required columns (kept in schema
/// order). Pruning is skipped when a required column is missing — the
/// unpruned plan then surfaces the original resolution error at execution.
fn narrow_scan(
    existing: Option<Vec<String>>,
    schema_names: impl Iterator<Item = String>,
    required: Option<&BTreeSet<String>>,
) -> Option<Vec<String>> {
    let available: Vec<String> = match &existing {
        Some(p) => p.clone(),
        None => schema_names.collect(),
    };
    let Some(req) = required else {
        return existing;
    };
    // a zero-column scan would lose the row count (COUNT(*) over no
    // attributes); keep the scan as-is when nothing by name is required
    if req.is_empty() || !req.iter().all(|r| available.contains(r)) {
        return existing;
    }
    let narrowed: Vec<String> = available
        .iter()
        .filter(|n| req.contains(*n))
        .cloned()
        .collect();
    if narrowed.len() < available.len() {
        Some(narrowed)
    } else {
        existing
    }
}

// ---------------------------------------------------------------------
// Pass 5: Limit-into-Sort fusion (top-k)
// ---------------------------------------------------------------------

/// `Limit n` directly over `OrderBy keys` becomes `TopK(keys, n)`: the
/// executor then keeps the k best rows in a bounded heap instead of
/// materialising the full sort. The rewrite is exact — [`rma_relation::
/// top_k`] breaks ties by row index, reproducing the stable sort's prefix.
fn fuse_top_k(plan: LogicalPlan) -> LogicalPlan {
    let plan = plan.map_children(&mut fuse_top_k);
    match plan {
        LogicalPlan::Limit { input, n } => match *input {
            LogicalPlan::OrderBy { input: inner, keys } => LogicalPlan::TopK {
                input: inner,
                keys,
                n,
            },
            other => LogicalPlan::Limit {
                input: Box::new(other),
                n,
            },
        },
        other => other,
    }
}

// ---------------------------------------------------------------------
// Pass 6: redundant-sort elimination
// ---------------------------------------------------------------------

/// Bottom-up sortedness inference: rewrite the plan, flagging RMA arguments
/// whose input is provably sorted by the argument's order schema, and
/// return the attribute list the node's own output is sorted by (if any).
fn mark_sorted_inputs(plan: LogicalPlan) -> (LogicalPlan, Option<Vec<String>>) {
    match plan {
        LogicalPlan::OrderBy { input, keys } => {
            let (input, _) = mark_sorted_inputs(*input);
            let sorted = keys
                .iter()
                .all(|(_, asc)| *asc)
                .then(|| keys.iter().map(|(k, _)| k.clone()).collect());
            (
                LogicalPlan::OrderBy {
                    input: Box::new(input),
                    keys,
                },
                sorted,
            )
        }
        // row-preserving operators keep their input's order
        LogicalPlan::Select { input, predicate } => {
            let (input, sorted) = mark_sorted_inputs(*input);
            (
                LogicalPlan::Select {
                    input: Box::new(input),
                    predicate,
                },
                sorted,
            )
        }
        LogicalPlan::Limit { input, n } => {
            let (input, sorted) = mark_sorted_inputs(*input);
            (
                LogicalPlan::Limit {
                    input: Box::new(input),
                    n,
                },
                sorted,
            )
        }
        // top-k output is sorted by its keys, like the OrderBy it replaced
        LogicalPlan::TopK { input, keys, n } => {
            let (input, _) = mark_sorted_inputs(*input);
            let sorted = keys
                .iter()
                .all(|(_, asc)| *asc)
                .then(|| keys.iter().map(|(k, _)| k.clone()).collect());
            (
                LogicalPlan::TopK {
                    input: Box::new(input),
                    keys,
                    n,
                },
                sorted,
            )
        }
        LogicalPlan::AssertKey { input, attrs } => {
            let (input, sorted) = mark_sorted_inputs(*input);
            (
                LogicalPlan::AssertKey {
                    input: Box::new(input),
                    attrs,
                },
                sorted,
            )
        }
        // distinct keeps first occurrences in input order
        LogicalPlan::Distinct { input } => {
            let (input, sorted) = mark_sorted_inputs(*input);
            (
                LogicalPlan::Distinct {
                    input: Box::new(input),
                },
                sorted,
            )
        }
        // a projection preserves sortedness when every sort key survives as
        // an identity item
        LogicalPlan::Project { input, items } => {
            let (input, sorted) = mark_sorted_inputs(*input);
            let preserved = sorted.filter(|keys| {
                keys.iter().all(|k| {
                    items
                        .iter()
                        .any(|(e, n)| n == k && matches!(e, Expr::Col(c) if c == k))
                })
            });
            (
                LogicalPlan::Project {
                    input: Box::new(input),
                    items,
                },
                preserved,
            )
        }
        LogicalPlan::Rma { op, args, backend } => {
            let args: Vec<RmaArg> = args
                .into_iter()
                .map(|a| {
                    let (input, sorted) = mark_sorted_inputs(*a.input);
                    let sorted_input =
                        a.sorted_input || sorted.as_deref() == Some(a.order.as_slice());
                    RmaArg {
                        input: Box::new(input),
                        order: a.order,
                        sorted_input,
                    }
                })
                .collect();
            let sorted = rma_output_sorted(op, &args);
            (LogicalPlan::Rma { op, args, backend }, sorted)
        }
        // joins, unions, aggregation, and scans give no ordering guarantee
        other => (other.map_children(&mut |p| mark_sorted_inputs(p).0), None),
    }
}

/// Is the output of an RMA node sorted by its first argument's order
/// schema? True exactly when the node's row context is the (sorted) order
/// part of the first argument — i.e. the result's row dimension is `r1`
/// (or `r*`) and the execution either materialises the sort or inherits a
/// sorted input. Only called under the Optimized policy (the pass is
/// gated in [`optimize`]), so element-wise ops — whose first argument
/// stays physical under relative alignment — never guarantee order.
fn rma_output_sorted(op: RmaOp, args: &[RmaArg]) -> Option<Vec<String>> {
    if !matches!(op.shape().rows, Dim::R1 | Dim::RStar) {
        return None;
    }
    let first = args.first()?;
    let elementwise = matches!(op, RmaOp::Add | RmaOp::Sub | RmaOp::Emu);
    let will_be_sorted = first.sorted_input || (!elementwise && op.result_depends_on_row_order());
    will_be_sorted.then(|| first.order.clone())
}

// ---------------------------------------------------------------------
// Pass 7: plan-level backend choice
// ---------------------------------------------------------------------

/// Statically estimated size of a plan's output.
#[derive(Debug, Clone, Copy)]
struct DimsEst {
    rows: usize,
    cols: usize,
    /// True when the estimate is exact (derived only from scans and
    /// cardinality-preserving operators), so a plan-time kernel decision
    /// is guaranteed to match the execution-time one.
    exact: bool,
}

fn choose_backends(
    plan: LogicalPlan,
    ctx: &RmaContext,
    provider: &dyn TableProvider,
) -> LogicalPlan {
    let plan = plan.map_children(&mut |p| choose_backends(p, ctx, provider));
    let LogicalPlan::Rma { op, args, backend } = plan else {
        return plan;
    };
    if backend.is_some() {
        return LogicalPlan::Rma { op, args, backend };
    }
    let chosen = rma_app_dims(op, &args, provider).map(|(first, second)| {
        ctx.choose_kernel(op, first.rows, first.cols, second.map(|d| (d.rows, d.cols)))
    });
    LogicalPlan::Rma {
        op,
        args,
        backend: chosen,
    }
}

/// Exact application-part dimensions of an RMA node's argument(s), or
/// `None` when any argument's size is not statically exact.
fn rma_app_dims(
    op: RmaOp,
    args: &[RmaArg],
    provider: &dyn TableProvider,
) -> Option<(DimsEst, Option<DimsEst>)> {
    let first = app_dims(args.first()?, provider)?;
    let second = if op.is_binary() {
        Some(app_dims(args.get(1)?, provider)?)
    } else {
        None
    };
    Some((first, second))
}

/// Application dims of one argument: relation rows × (columns − order
/// columns).
fn app_dims(arg: &RmaArg, provider: &dyn TableProvider) -> Option<DimsEst> {
    let d = estimate_dims(&arg.input, provider)?;
    if !d.exact || d.cols <= arg.order.len() {
        return None;
    }
    Some(DimsEst {
        rows: d.rows,
        cols: d.cols - arg.order.len(),
        exact: true,
    })
}

fn estimate_dims(plan: &LogicalPlan, provider: &dyn TableProvider) -> Option<DimsEst> {
    match plan {
        LogicalPlan::Values { rel, projection } => Some(DimsEst {
            rows: rel.len(),
            cols: projection.as_ref().map_or(rel.schema().len(), Vec::len),
            exact: true,
        }),
        LogicalPlan::Scan { table, projection } => {
            let r = provider.table(table)?;
            Some(DimsEst {
                rows: r.len(),
                cols: projection.as_ref().map_or(r.schema().len(), Vec::len),
                exact: true,
            })
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::Distinct { input } => {
            let d = estimate_dims(input, provider)?;
            Some(DimsEst { exact: false, ..d })
        }
        LogicalPlan::OrderBy { input, .. } | LogicalPlan::AssertKey { input, .. } => {
            estimate_dims(input, provider)
        }
        LogicalPlan::Limit { input, n } | LogicalPlan::TopK { input, n, .. } => {
            let d = estimate_dims(input, provider)?;
            Some(DimsEst {
                rows: d.rows.min(*n),
                ..d
            })
        }
        LogicalPlan::Project { input, items } => {
            let d = estimate_dims(input, provider)?;
            Some(DimsEst {
                cols: items.len(),
                ..d
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let d = estimate_dims(input, provider)?;
            Some(DimsEst {
                rows: d.rows,
                cols: group_by.len() + aggs.len(),
                exact: false,
            })
        }
        LogicalPlan::Cross { left, right } => {
            let l = estimate_dims(left, provider)?;
            let r = estimate_dims(right, provider)?;
            Some(DimsEst {
                rows: l.rows.checked_mul(r.rows)?,
                cols: l.cols + r.cols,
                exact: l.exact && r.exact,
            })
        }
        LogicalPlan::UnionAll { left, right } => {
            let l = estimate_dims(left, provider)?;
            let r = estimate_dims(right, provider)?;
            Some(DimsEst {
                rows: l.rows + r.rows,
                cols: l.cols,
                exact: l.exact && r.exact,
            })
        }
        LogicalPlan::NaturalJoin { .. } | LogicalPlan::JoinOn { .. } => None,
        LogicalPlan::Rma { op, args, .. } => {
            let (first, second) = rma_app_dims(*op, args, provider)?;
            let shape = op.shape();
            let order0 = args.first()?.order.len();
            let order1 = args.get(1).map_or(0, |a| a.order.len());
            let rows = match shape.rows {
                Dim::R1 | Dim::RStar => first.rows,
                Dim::R2 => second?.rows,
                Dim::C1 | Dim::CStar => first.cols,
                Dim::C2 => second?.cols,
                Dim::One => 1,
            };
            let context_cols = match shape.rows {
                Dim::R1 => order0,
                Dim::RStar => order0 + order1,
                Dim::C1 | Dim::One => 1,
                // no operation has r2/c2/c* row context
                Dim::R2 | Dim::C2 | Dim::CStar => return None,
            };
            let base_cols = match shape.cols {
                Dim::C1 | Dim::CStar => first.cols,
                Dim::C2 => second?.cols,
                Dim::R1 => first.rows,
                Dim::R2 => second?.rows,
                Dim::One => 1,
                Dim::RStar => return None,
            };
            Some(DimsEst {
                rows,
                cols: context_cols + base_cols,
                exact: first.exact && second.is_none_or(|s| s.exact),
            })
        }
    }
}
