//! The concurrent serving layer: versioned catalog, snapshot reads, and
//! budgeted sessions on the shared worker pool.
//!
//! One process serves many concurrent sessions against one set of named
//! tables. Three pieces make that safe without reader-side locking:
//!
//! - **Table generations** ([`TableGeneration`]): a named table is an
//!   immutable `Arc`'d [`Relation`](rma_relation::Relation) plus the
//!   catalog version that installed it. Writers never mutate a generation
//!   — they prepare a *new* one (e.g. with
//!   [`Relation::appended`](rma_relation::Relation::appended)) and install
//!   it.
//! - **The versioned catalog** ([`VersionedCatalog`]): an immutable root
//!   (version → table map) behind a mutex that is held only long enough to
//!   clone or swap an `Arc`. Readers [pin](VersionedCatalog::snapshot) the
//!   root once per query and then execute entirely lock-free against it;
//!   writers install a new root with a first-committer-wins compare-and-
//!   swap ([`VersionedCatalog::commit`]) — the MVCC-lite protocol.
//! - **Sessions** ([`Session`] via [`Server::session`]): each session
//!   forks the server's execution context (private statistics, shared
//!   worker pool) and carries a
//!   [`SessionTicket`](rma_relation::SessionTicket) whose seat budget and
//!   fair-scheduling pass govern how the session's morsel jobs are
//!   admitted onto the pool — one heavy query cannot starve the rest.
//!
//! ```
//! use rma_core::serve::Server;
//! use rma_core::Frame;
//! use rma_relation::RelationBuilder;
//!
//! let server = Server::default();
//! let session = server.session();
//! let t = RelationBuilder::new()
//!     .column("x", vec![1i64, 2, 3])
//!     .build()
//!     .unwrap();
//! session.create_table("t", t).unwrap();
//! let sum = session
//!     .query(Frame::table("t").aggregate(&[], vec![rma_relation::AggSpec::sum("x", "s")]))
//!     .unwrap();
//! assert_eq!(sum.column("s").unwrap().get(0), rma_storage::Value::Int(6));
//! ```

mod catalog;
mod metrics;
mod session;

pub use catalog::{CatalogSnapshot, TableGeneration, VersionedCatalog};
pub use metrics::{MetricsRegistry, MetricsSnapshot, SessionCounters, SessionMetrics};
pub use session::{Server, Session};

/// Errors of the serving layer's write path. Read-path errors surface as
/// plan errors from the query itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `CREATE TABLE` of a name that already exists (use
    /// [`VersionedCatalog::create_or_replace`] to overwrite).
    TableExists(String),
    /// A write referenced a table the catalog does not hold.
    NoSuchTable(String),
    /// First-committer-wins: the table's generation moved between the
    /// writer's snapshot and its commit. The writer should re-pin, re-apply
    /// its delta, and retry (see [`Session::insert`]).
    WriteConflict {
        /// The table the commit targeted.
        table: String,
        /// The generation the writer prepared against.
        expected: u64,
        /// The generation actually installed in the catalog.
        found: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::TableExists(t) => write!(f, "table '{t}' already exists"),
            ServeError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            ServeError::WriteConflict {
                table,
                expected,
                found,
            } => write!(
                f,
                "write conflict on '{table}': prepared against generation \
                 {expected}, catalog now holds {found}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}
