//! The concurrent serving layer: versioned catalog, snapshot reads, and
//! budgeted sessions on the shared worker pool.
//!
//! One process serves many concurrent sessions against one set of named
//! tables. Three pieces make that safe without reader-side locking:
//!
//! - **Table generations** ([`TableGeneration`]): a named table is an
//!   immutable `Arc`'d [`Relation`](rma_relation::Relation) plus the
//!   catalog version that installed it. Writers never mutate a generation
//!   — they prepare a *new* one (e.g. with
//!   [`Relation::appended`](rma_relation::Relation::appended)) and install
//!   it.
//! - **The versioned catalog** ([`VersionedCatalog`]): an immutable root
//!   (version → table map) behind a mutex that is held only long enough to
//!   clone or swap an `Arc`. Readers [pin](VersionedCatalog::snapshot) the
//!   root once per query and then execute entirely lock-free against it;
//!   writers install a new root with a first-committer-wins compare-and-
//!   swap ([`VersionedCatalog::commit`]) — the MVCC-lite protocol.
//! - **Sessions** ([`Session`] via [`Server::session`]): each session
//!   forks the server's execution context (private statistics, shared
//!   worker pool) and carries a
//!   [`SessionTicket`](rma_relation::SessionTicket) whose seat budget and
//!   fair-scheduling pass govern how the session's morsel jobs are
//!   admitted onto the pool — one heavy query cannot starve the rest.
//!
//! ```
//! use rma_core::serve::Server;
//! use rma_core::Frame;
//! use rma_relation::RelationBuilder;
//!
//! let server = Server::default();
//! let session = server.session();
//! let t = RelationBuilder::new()
//!     .column("x", vec![1i64, 2, 3])
//!     .build()
//!     .unwrap();
//! session.create_table("t", t).unwrap();
//! let sum = session
//!     .query(Frame::table("t").aggregate(&[], vec![rma_relation::AggSpec::sum("x", "s")]))
//!     .unwrap();
//! assert_eq!(sum.column("s").unwrap().get(0), rma_storage::Value::Int(6));
//! ```

mod catalog;
mod metrics;
mod session;

pub use catalog::{CatalogSnapshot, TableGeneration, VersionedCatalog};
pub use metrics::{MetricsRegistry, MetricsSnapshot, SessionCounters, SessionMetrics};
pub use session::{Server, Session};

#[cfg(test)]
mod backoff_tests {
    use super::Backoff;
    use std::time::Duration;

    #[test]
    fn delays_stay_within_bounds_and_vary() {
        let base = Duration::from_micros(50);
        let cap = Duration::from_millis(5);
        let mut b = Backoff::new(base, cap);
        let mut delays = Vec::new();
        for _ in 0..64 {
            let d = b.next_delay();
            assert!(d >= base, "delay {d:?} under base");
            assert!(d <= cap, "delay {d:?} over cap");
            delays.push(d);
        }
        // jitter: not all 64 draws identical
        assert!(delays.iter().any(|d| d != &delays[0]));
    }
}

/// Errors of the serving layer's write path. Read-path errors surface as
/// plan errors from the query itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `CREATE TABLE` of a name that already exists (use
    /// [`VersionedCatalog::create_or_replace`] to overwrite).
    TableExists(String),
    /// A write referenced a table the catalog does not hold.
    NoSuchTable(String),
    /// First-committer-wins: the table's generation moved between the
    /// writer's snapshot and its commit. The writer should re-pin, re-apply
    /// its delta, and retry (see [`Session::insert`]).
    WriteConflict {
        /// The table the commit targeted.
        table: String,
        /// The generation the writer prepared against.
        expected: u64,
        /// The generation actually installed in the catalog.
        found: u64,
    },
    /// The optimistic commit loop lost the first-committer-wins race more
    /// times than the session's retry cap allows
    /// ([`Session::set_write_retry_limit`], default 16) and gave up.
    /// Maps onto `RmaError::WriteContention` at the SQL boundary.
    Contention {
        /// The table the writes targeted.
        table: String,
        /// Commit attempts made before giving up.
        retries: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::TableExists(t) => write!(f, "table '{t}' already exists"),
            ServeError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            ServeError::WriteConflict {
                table,
                expected,
                found,
            } => write!(
                f,
                "write conflict on '{table}': prepared against generation \
                 {expected}, catalog now holds {found}"
            ),
            ServeError::Contention { table, retries } => write!(
                f,
                "write contention on '{table}': gave up after {retries} \
                 optimistic commit attempts"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Decorrelated-jitter backoff for optimistic-commit retries
/// (AWS-architecture-blog style: each sleep is uniform in
/// `[base, prev * 3]`, capped). Jitter decorrelates retrying writers so
/// they do not re-collide in lockstep; the cap bounds worst-case insert
/// latency at `retry_limit × cap` (~80 ms at the defaults).
#[derive(Debug)]
pub struct Backoff {
    base: std::time::Duration,
    cap: std::time::Duration,
    prev: std::time::Duration,
    /// xorshift64* state — seeded from the thread-unique address-space
    /// entropy of `RandomState`, no external RNG dependency.
    rng: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new(
            std::time::Duration::from_micros(50),
            std::time::Duration::from_millis(5),
        )
    }
}

impl Backoff {
    /// A backoff sleeping between `base` and `cap` per retry.
    pub fn new(base: std::time::Duration, cap: std::time::Duration) -> Self {
        use std::hash::{BuildHasher, Hasher};
        let seed = std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish();
        Backoff {
            base,
            cap,
            prev: base,
            rng: seed | 1, // xorshift state must be non-zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next sleep duration: uniform in `[base, min(cap, prev * 3)]`.
    pub fn next_delay(&mut self) -> std::time::Duration {
        let lo = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .min(self.cap.as_nanos() as u64)
            .max(lo + 1);
        let jittered = lo + self.next_u64() % (hi - lo);
        self.prev = std::time::Duration::from_nanos(jittered);
        self.prev
    }

    /// Sleep for [`Backoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}
