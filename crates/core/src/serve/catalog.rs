//! The versioned catalog: immutable roots, pinned snapshots, and the
//! first-committer-wins commit protocol.

use super::ServeError;
use crate::plan::{PartitionedTableProvider, TableProvider};
use rma_relation::Relation;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One immutable generation of a named table: the `Arc`'d relation plus
/// the catalog version that installed it. Generations are never mutated —
/// a write installs a successor generation, and readers pinned to this one
/// keep it alive through the `Arc` for as long as their query runs.
#[derive(Debug, Clone)]
pub struct TableGeneration {
    rel: Arc<Relation>,
    gen: u64,
}

impl TableGeneration {
    /// The generation's relation (shared, immutable).
    pub fn relation(&self) -> &Arc<Relation> {
        &self.rel
    }

    /// The catalog version at which this generation was installed. This is
    /// the token a writer passes back to [`VersionedCatalog::commit`] to
    /// prove its delta was prepared against the current generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }
}

/// An immutable catalog root: the full name → generation map at one
/// version. Roots are cheap to derive (cloning the map clones `Arc`s and
/// small strings, never table data) and never change after installation.
#[derive(Debug, Default)]
struct Root {
    version: u64,
    /// Keyed by lower-cased name (lookups are case-insensitive, matching
    /// the SQL layer); the stored relation keeps its display name.
    tables: HashMap<String, TableGeneration>,
}

/// The shared, versioned table store of the serving layer.
///
/// The catalog holds one current root (the versioned name → generation
/// map) behind a mutex that protects
/// only the `Arc` itself: [`VersionedCatalog::snapshot`] locks to clone
/// the `Arc` (a pin — O(1), no table data touched), writers lock to swap
/// in a successor root. Query execution never holds the lock, which is
/// what "readers never block on writers" means operationally: a reader's
/// only synchronisation is that one clone.
///
/// Writes follow MVCC-lite first-committer-wins: prepare a new generation
/// against a pinned snapshot, then [`VersionedCatalog::commit`] it with
/// the generation token observed at the pin. If another writer installed
/// a newer generation in between, the commit fails with
/// [`ServeError::WriteConflict`] and the writer re-prepares against a
/// fresh pin — the in-memory analogue of optimistic concurrency control.
#[derive(Debug, Default)]
pub struct VersionedCatalog {
    root: Mutex<Arc<Root>>,
}

impl VersionedCatalog {
    /// An empty catalog at version 0.
    pub fn new() -> Self {
        VersionedCatalog::default()
    }

    /// Pin the current root: the returned snapshot keeps every table
    /// generation it names alive and consistent for its whole lifetime,
    /// unaffected by concurrent commits. O(1) — one brief lock to clone an
    /// `Arc`.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            root: Arc::clone(&self.lock()),
        }
    }

    /// The current catalog version (advances by one per successful write).
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<Root>> {
        self.root.lock().expect("catalog root poisoned")
    }

    /// Install `next` as the successor root under the lock, applying `edit`
    /// to a fresh clone of the current map. Returns the new version.
    fn install(
        &self,
        edit: impl FnOnce(&Root, &mut HashMap<String, TableGeneration>, u64) -> Result<(), ServeError>,
    ) -> Result<u64, ServeError> {
        let mut guard = self.lock();
        let current = &**guard;
        let version = current.version + 1;
        let mut tables = current.tables.clone();
        edit(current, &mut tables, version)?;
        *guard = Arc::new(Root { version, tables });
        Ok(version)
    }

    /// Create a table; errors with [`ServeError::TableExists`] if the name
    /// is taken. Returns the new catalog version.
    pub fn create(&self, name: &str, rel: Relation) -> Result<u64, ServeError> {
        let key = name.to_ascii_lowercase();
        let named = rel.encoded().with_name(name);
        self.install(|_, tables, version| {
            if tables.contains_key(&key) {
                return Err(ServeError::TableExists(name.to_string()));
            }
            tables.insert(
                key,
                TableGeneration {
                    rel: Arc::new(named),
                    gen: version,
                },
            );
            Ok(())
        })
    }

    /// Create or overwrite a table unconditionally (SQL
    /// `CREATE OR REPLACE TABLE`). An overwrite is a generation bump like
    /// any other write: readers pinned to the old generation are
    /// untouched. Returns the new catalog version.
    pub fn create_or_replace(&self, name: &str, rel: Relation) -> u64 {
        let key = name.to_ascii_lowercase();
        let named = rel.encoded().with_name(name);
        self.install(|_, tables, version| {
            tables.insert(
                key,
                TableGeneration {
                    rel: Arc::new(named),
                    gen: version,
                },
            );
            Ok(())
        })
        .expect("unconditional replace cannot conflict")
    }

    /// Drop a table; errors with [`ServeError::NoSuchTable`] if absent. A
    /// drop is a generation bump of the *catalog* (pinned readers still see
    /// the table; the generation is freed when the last pin drops). Returns
    /// the new catalog version.
    pub fn drop_table(&self, name: &str) -> Result<u64, ServeError> {
        let key = name.to_ascii_lowercase();
        self.install(|_, tables, _| {
            if tables.remove(&key).is_none() {
                return Err(ServeError::NoSuchTable(name.to_string()));
            }
            Ok(())
        })
    }

    /// First-committer-wins installation of a prepared generation: succeeds
    /// only if the table's current generation still equals `expected` — the
    /// token the writer read from its pinned snapshot
    /// ([`CatalogSnapshot::generation`]) before preparing `rel`. On success
    /// the new generation is visible to every subsequent pin and the new
    /// catalog version is returned; on conflict nothing changes and the
    /// writer must re-prepare against a fresh snapshot.
    pub fn commit(&self, name: &str, expected: u64, rel: Relation) -> Result<u64, ServeError> {
        let key = name.to_ascii_lowercase();
        let named = rel.encoded().with_name(name);
        self.install(|_, tables, version| {
            let current = tables
                .get(&key)
                .ok_or_else(|| ServeError::NoSuchTable(name.to_string()))?;
            if current.gen != expected {
                return Err(ServeError::WriteConflict {
                    table: name.to_string(),
                    expected,
                    found: current.gen,
                });
            }
            tables.insert(
                key,
                TableGeneration {
                    rel: Arc::new(named),
                    gen: version,
                },
            );
            Ok(())
        })
    }
}

/// A pinned, immutable view of the catalog at one version — the table
/// source a query executes against. Cloning shares the pin. Implements
/// [`TableProvider`], so any [`Frame`](crate::Frame) /
/// [`LogicalPlan`](crate::LogicalPlan) query (and the SQL layer on top)
/// can resolve named scans through it; partitioned scans use the default
/// row-range partitioner.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    root: Arc<Root>,
}

impl CatalogSnapshot {
    /// The catalog version this snapshot pinned.
    pub fn version(&self) -> u64 {
        self.root.version
    }

    /// The pinned generation of a table (case-insensitive), if present.
    pub fn get(&self, name: &str) -> Option<&TableGeneration> {
        self.root.tables.get(&name.to_ascii_lowercase())
    }

    /// The generation token of a table — what a writer passes to
    /// [`VersionedCatalog::commit`] after preparing a successor from this
    /// snapshot.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.get(name).map(TableGeneration::generation)
    }

    /// The pinned relation of a table, shared (`Arc` clone, zero-copy).
    pub fn table_arc(&self, name: &str) -> Option<Arc<Relation>> {
        self.get(name).map(|g| Arc::clone(&g.rel))
    }

    /// Does the snapshot hold a table of this name?
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// All table names in the snapshot (sorted, for deterministic output).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.root.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl TableProvider for CatalogSnapshot {
    fn table(&self, name: &str) -> Option<&Relation> {
        self.get(name).map(|g| &*g.rel)
    }
}

impl PartitionedTableProvider for CatalogSnapshot {}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_relation::RelationBuilder;

    fn rel(xs: Vec<i64>) -> Relation {
        RelationBuilder::new().column("x", xs).build().unwrap()
    }

    #[test]
    fn create_lookup_case_insensitive_and_duplicate_rejected() {
        let cat = VersionedCatalog::new();
        cat.create("Trips", rel(vec![1])).unwrap();
        let snap = cat.snapshot();
        assert!(snap.contains("trips"));
        assert!(snap.contains("TRIPS"));
        assert_eq!(snap.table("trips").unwrap().name(), Some("Trips"));
        assert!(matches!(
            cat.create("TRIPS", rel(vec![2])),
            Err(ServeError::TableExists(_))
        ));
    }

    #[test]
    fn snapshot_pins_generation_across_writes() {
        let cat = VersionedCatalog::new();
        cat.create("t", rel(vec![1, 2])).unwrap();
        let pinned = cat.snapshot();
        // writer installs two successor generations and a drop
        let g = pinned.generation("t").unwrap();
        cat.commit("t", g, rel(vec![1, 2, 3])).unwrap();
        cat.create_or_replace("t", rel(vec![9]));
        cat.drop_table("t").unwrap();
        // the pin still sees the original rows, zero-copy
        assert_eq!(pinned.table("t").unwrap().len(), 2);
        let fresh = cat.snapshot();
        assert!(!fresh.contains("t"));
        assert!(fresh.version() > pinned.version());
    }

    #[test]
    fn snapshot_pin_is_zero_copy() {
        let cat = VersionedCatalog::new();
        cat.create("t", rel(vec![1, 2, 3])).unwrap();
        let a = cat.snapshot();
        let b = cat.snapshot();
        assert!(a
            .table("t")
            .unwrap()
            .shares_columns_with(b.table("t").unwrap()));
    }

    #[test]
    fn first_committer_wins() {
        let cat = VersionedCatalog::new();
        cat.create("t", rel(vec![1])).unwrap();
        let snap = cat.snapshot();
        let g = snap.generation("t").unwrap();
        // writer A prepares and commits first
        let base = snap.table("t").unwrap();
        let a = base.appended(&rel(vec![10])).unwrap();
        cat.commit("t", g, a).unwrap();
        // writer B prepared against the same generation: must conflict
        let b = base.appended(&rel(vec![20])).unwrap();
        let err = cat.commit("t", g, b).unwrap_err();
        assert!(
            matches!(err, ServeError::WriteConflict { expected, found, .. }
            if expected == g && found > g)
        );
        // B retries against a fresh pin and succeeds
        let snap2 = cat.snapshot();
        let b2 = snap2.table("t").unwrap().appended(&rel(vec![20])).unwrap();
        cat.commit("t", snap2.generation("t").unwrap(), b2).unwrap();
        let final_rows = cat.snapshot().table("t").unwrap().len();
        assert_eq!(final_rows, 3, "both writers' rows survive, in commit order");
    }

    #[test]
    fn drop_missing_and_commit_missing_error() {
        let cat = VersionedCatalog::new();
        assert!(matches!(
            cat.drop_table("nope"),
            Err(ServeError::NoSuchTable(_))
        ));
        assert!(matches!(
            cat.commit("nope", 0, rel(vec![1])),
            Err(ServeError::NoSuchTable(_))
        ));
    }

    #[test]
    fn version_advances_per_write() {
        let cat = VersionedCatalog::new();
        assert_eq!(cat.version(), 0);
        cat.create("a", rel(vec![1])).unwrap();
        assert_eq!(cat.version(), 1);
        cat.create_or_replace("a", rel(vec![2]));
        assert_eq!(cat.version(), 2);
        // failed writes do not advance the version
        let _ = cat.create("a", rel(vec![3]));
        assert_eq!(cat.version(), 2);
        assert_eq!(cat.snapshot().table_names(), vec!["a"]);
    }
}
