//! The serving layer's metrics registry: per-session counters plus
//! pool-level gauges, snapshot-able as plain structs and dumpable as JSON.
//!
//! Every [`Session`](super::Session) (and every SQL engine opened through
//! `Engine::session`) registers a [`SessionCounters`] cell with its
//! server's [`MetricsRegistry`] and increments it on the query/write path
//! — all atomics, no locks on the hot path. A [`MetricsSnapshot`]
//! combines the per-session counters, their totals, the worker pool's
//! [`PoolStats`], and a pool-utilization estimate (busy worker time over
//! `threads × uptime`); [`MetricsSnapshot::to_json`] renders it without
//! any serialization dependency, for CI artifacts and ad-hoc dashboards.

use rma_relation::PoolStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One session's activity counters. Shared (`Arc`) between the session
/// that increments and the registry that snapshots; all relaxed atomics.
#[derive(Debug)]
pub struct SessionCounters {
    id: u64,
    queries: AtomicU64,
    rows: AtomicU64,
    conflicts: AtomicU64,
    retries: AtomicU64,
    queries_cancelled: AtomicU64,
    deadline_kills: AtomicU64,
    mem_rejections: AtomicU64,
    worker_panics: AtomicU64,
    spill_bytes: AtomicU64,
    spill_partitions: AtomicU64,
    decode_sinks: AtomicU64,
}

impl SessionCounters {
    fn new(id: u64) -> Self {
        SessionCounters {
            id,
            queries: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            queries_cancelled: AtomicU64::new(0),
            deadline_kills: AtomicU64::new(0),
            mem_rejections: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            spill_partitions: AtomicU64::new(0),
            decode_sinks: AtomicU64::new(0),
        }
    }

    /// The registry-assigned session id (1-based, in open order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Count one issued query.
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count rows returned to the client.
    pub fn record_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one first-committer-wins write conflict and the retry it
    /// forces.
    pub fn record_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one query killed by [`Session::cancel`](super::Session::cancel)
    /// (governor action, not an engine fault).
    pub fn record_cancelled(&self) {
        self.queries_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one query killed by its deadline.
    pub fn record_deadline_kill(&self) {
        self.deadline_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one query rejected or aborted on its memory budget (at
    /// admission or mid-flight).
    pub fn record_mem_rejection(&self) {
        self.mem_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one operator panic caught and converted to a typed error at
    /// the session boundary.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one query's out-of-core activity: bytes written to spill
    /// files and spill partitions/runs created.
    pub fn record_spill(&self, bytes: u64, partitions: u64) {
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_partitions
            .fetch_add(partitions, Ordering::Relaxed);
    }

    /// Account forced `decode()` sinks a query triggered: encoded columns
    /// a kernel could not process in encoded form and materialized.
    pub fn record_decode_sinks(&self, n: u64) {
        self.decode_sinks.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SessionMetrics {
        SessionMetrics {
            id: self.id,
            queries: self.queries.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            mem_rejections: self.mem_rejections.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_partitions: self.spill_partitions.load(Ordering::Relaxed),
            decode_sinks: self.decode_sinks.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of one session's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Registry-assigned session id.
    pub id: u64,
    /// Queries the session issued.
    pub queries: u64,
    /// Rows returned to the session's client.
    pub rows: u64,
    /// Write conflicts the session hit (first-committer-wins losses).
    pub conflicts: u64,
    /// Optimistic-commit retries the conflicts forced.
    pub retries: u64,
    /// Queries killed by `Session::cancel`.
    pub queries_cancelled: u64,
    /// Queries killed by their deadline.
    pub deadline_kills: u64,
    /// Queries rejected or aborted on their memory budget.
    pub mem_rejections: u64,
    /// Operator panics caught and typed at the session boundary.
    pub worker_panics: u64,
    /// Bytes the session's queries wrote to spill files.
    pub spill_bytes: u64,
    /// Spill partitions/runs the session's queries created.
    pub spill_partitions: u64,
    /// Forced `decode()` sinks the session's queries triggered.
    pub decode_sinks: u64,
}

/// Server-wide engine metrics: what every session did, what the pool is
/// doing, since when.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-session counters, in session-open order.
    pub sessions: Vec<SessionMetrics>,
    /// Total queries across sessions.
    pub queries: u64,
    /// Total rows returned across sessions.
    pub rows: u64,
    /// Total write conflicts across sessions.
    pub conflicts: u64,
    /// Total optimistic-commit retries across sessions.
    pub retries: u64,
    /// Total queries killed by cancellation across sessions.
    pub queries_cancelled: u64,
    /// Total queries killed by their deadline across sessions.
    pub deadline_kills: u64,
    /// Total memory-budget rejections across sessions.
    pub mem_rejections: u64,
    /// Total worker panics caught and typed across sessions.
    pub worker_panics: u64,
    /// Total bytes written to spill files across sessions.
    pub spill_bytes: u64,
    /// Total spill partitions/runs created across sessions.
    pub spill_partitions: u64,
    /// Total forced `decode()` sinks across sessions (0 = every query ran
    /// fully on encoded storage).
    pub decode_sinks: u64,
    /// Catalog storage footprint as physically held (encoded forms
    /// included), in bytes, at snapshot time.
    pub storage_encoded_bytes: u64,
    /// What the same catalog would occupy fully decoded, in bytes — the
    /// denominator of the live compression ratio.
    pub storage_plain_bytes: u64,
    /// The worker pool's counters and gauges (queue depth, wait, busy).
    pub pool: PoolStats,
    /// Time since the registry (= the server) was created.
    pub uptime: Duration,
    /// Busy worker time over `threads × uptime`, clamped to `[0, 1]` — a
    /// coarse "how loaded is the pool" figure.
    pub utilization: f64,
}

impl MetricsSnapshot {
    /// Render the snapshot as a self-contained JSON object (hand-rolled —
    /// every field is numeric, so no escaping is needed).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256 + self.sessions.len() * 96);
        let _ = write!(
            out,
            "{{\"uptime_ms\":{},\"queries\":{},\"rows\":{},\"conflicts\":{},\"retries\":{},\
             \"queries_cancelled\":{},\"deadline_kills\":{},\"mem_rejections\":{},\
             \"worker_panics\":{},\"spill_bytes\":{},\"spill_partitions\":{},\
             \"decode_sinks\":{},\"storage_encoded_bytes\":{},\"storage_plain_bytes\":{},",
            self.uptime.as_millis(),
            self.queries,
            self.rows,
            self.conflicts,
            self.retries,
            self.queries_cancelled,
            self.deadline_kills,
            self.mem_rejections,
            self.worker_panics,
            self.spill_bytes,
            self.spill_partitions,
            self.decode_sinks,
            self.storage_encoded_bytes,
            self.storage_plain_bytes
        );
        let _ = write!(
            out,
            "\"pool\":{{\"threads\":{},\"threads_spawned\":{},\"jobs_run\":{},\
             \"jobs_panicked\":{},\"queue_depth\":{},\"queue_wait_us\":{},\"busy_us\":{},\
             \"utilization\":{:.4}}},",
            self.pool.threads,
            self.pool.threads_spawned,
            self.pool.jobs_run,
            self.pool.jobs_panicked,
            self.pool.queue_depth,
            self.pool.queue_wait.as_micros(),
            self.pool.busy.as_micros(),
            self.utilization
        );
        out.push_str("\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"queries\":{},\"rows\":{},\"conflicts\":{},\"retries\":{},\
                 \"queries_cancelled\":{},\"deadline_kills\":{},\"mem_rejections\":{},\
                 \"worker_panics\":{},\"spill_bytes\":{},\"spill_partitions\":{},\
                 \"decode_sinks\":{}}}",
                s.id,
                s.queries,
                s.rows,
                s.conflicts,
                s.retries,
                s.queries_cancelled,
                s.deadline_kills,
                s.mem_rejections,
                s.worker_panics,
                s.spill_bytes,
                s.spill_partitions,
                s.decode_sinks
            );
        }
        out.push_str("]}");
        out
    }
}

/// The per-server metrics registry: assigns session ids, keeps every
/// session's counter cell, and produces [`MetricsSnapshot`]s.
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    next_id: AtomicU64,
    sessions: Mutex<Vec<Arc<SessionCounters>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            started: Instant::now(),
            next_id: AtomicU64::new(1),
            sessions: Mutex::new(Vec::new()),
        }
    }
}

impl MetricsRegistry {
    /// Open a new counter cell (called once per session).
    pub fn register_session(&self) -> Arc<SessionCounters> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::new(SessionCounters::new(id));
        self.sessions
            .lock()
            .expect("metrics registry poisoned")
            .push(Arc::clone(&counters));
        counters
    }

    /// Snapshot every session's counters together with the given pool
    /// stats (the server passes its pool's; see `Server::metrics`).
    pub fn snapshot(&self, pool: PoolStats) -> MetricsSnapshot {
        let sessions: Vec<SessionMetrics> = self
            .sessions
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|c| c.snapshot())
            .collect();
        let uptime = self.started.elapsed();
        let capacity = pool.threads as f64 * uptime.as_secs_f64();
        let utilization = if capacity > 0.0 {
            (pool.busy.as_secs_f64() / capacity).clamp(0.0, 1.0)
        } else {
            0.0
        };
        MetricsSnapshot {
            queries: sessions.iter().map(|s| s.queries).sum(),
            rows: sessions.iter().map(|s| s.rows).sum(),
            conflicts: sessions.iter().map(|s| s.conflicts).sum(),
            retries: sessions.iter().map(|s| s.retries).sum(),
            queries_cancelled: sessions.iter().map(|s| s.queries_cancelled).sum(),
            deadline_kills: sessions.iter().map(|s| s.deadline_kills).sum(),
            mem_rejections: sessions.iter().map(|s| s.mem_rejections).sum(),
            worker_panics: sessions.iter().map(|s| s.worker_panics).sum(),
            spill_bytes: sessions.iter().map(|s| s.spill_bytes).sum(),
            spill_partitions: sessions.iter().map(|s| s.spill_partitions).sum(),
            decode_sinks: sessions.iter().map(|s| s.decode_sinks).sum(),
            // storage footprint is a catalog property, filled in by
            // `Server::metrics_snapshot` (the registry has no catalog)
            storage_encoded_bytes: 0,
            storage_plain_bytes: 0,
            sessions,
            pool,
            uptime,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_ids_and_totals() {
        let reg = MetricsRegistry::default();
        let a = reg.register_session();
        let b = reg.register_session();
        assert_eq!((a.id(), b.id()), (1, 2));
        a.record_query();
        a.record_rows(10);
        b.record_query();
        b.record_query();
        b.record_conflict();
        let snap = reg.snapshot(PoolStats {
            threads: 4,
            ..PoolStats::default()
        });
        assert_eq!(snap.sessions.len(), 2);
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.rows, 10);
        assert_eq!(snap.conflicts, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.sessions[1].queries, 2);
        assert!(snap.utilization >= 0.0 && snap.utilization <= 1.0);
    }

    #[test]
    fn json_dump_is_wellformed() {
        let reg = MetricsRegistry::default();
        let s = reg.register_session();
        s.record_query();
        s.record_rows(7);
        let json = reg
            .snapshot(PoolStats {
                threads: 2,
                jobs_run: 5,
                ..PoolStats::default()
            })
            .to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries\":1"));
        assert!(json.contains("\"rows\":7"));
        assert!(json.contains("\"jobs_run\":5"));
        assert!(json.contains("\"sessions\":[{\"id\":1,"));
        // braces balance (proxy for well-formedness without a JSON parser)
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn governor_counters_roll_up() {
        let reg = MetricsRegistry::default();
        let a = reg.register_session();
        let b = reg.register_session();
        a.record_cancelled();
        a.record_deadline_kill();
        a.record_deadline_kill();
        b.record_mem_rejection();
        b.record_worker_panic();
        b.record_spill(4096, 8);
        b.record_spill(1024, 2);
        let snap = reg.snapshot(PoolStats {
            jobs_panicked: 3,
            ..PoolStats::default()
        });
        assert_eq!(snap.queries_cancelled, 1);
        assert_eq!(snap.deadline_kills, 2);
        assert_eq!(snap.mem_rejections, 1);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.sessions[0].deadline_kills, 2);
        assert_eq!(snap.sessions[1].worker_panics, 1);
        assert_eq!(snap.spill_bytes, 5120);
        assert_eq!(snap.spill_partitions, 10);
        assert_eq!(snap.sessions[1].spill_bytes, 5120);
        let json = snap.to_json();
        assert!(json.contains("\"queries_cancelled\":1"));
        assert!(json.contains("\"deadline_kills\":2"));
        assert!(json.contains("\"mem_rejections\":1"));
        assert!(json.contains("\"worker_panics\":1"));
        assert!(json.contains("\"jobs_panicked\":3"));
        assert!(json.contains("\"spill_bytes\":5120"));
        assert!(json.contains("\"spill_partitions\":10"));
    }

    #[test]
    fn empty_registry_snapshot() {
        let reg = MetricsRegistry::default();
        let snap = reg.snapshot(PoolStats::default());
        assert!(snap.sessions.is_empty());
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.utilization, 0.0);
        assert!(snap.to_json().contains("\"sessions\":[]"));
    }
}
