//! Servers and sessions: concurrent query front ends over the versioned
//! catalog and the shared worker pool.

use super::catalog::{CatalogSnapshot, VersionedCatalog};
use super::metrics::{MetricsRegistry, MetricsSnapshot, SessionCounters};
use super::{Backoff, ServeError};
use crate::context::{ExecStats, RmaContext};
use crate::error::RmaError;
use crate::plan::{stats, Frame, PlanError};
use rma_relation::{par::fault::FaultPlan, QueryGuard, Relation, SessionTicket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The default per-session seat budget: half the pool (at least two seats
/// when the pool has more than one thread), so two heavy sessions saturate
/// the machine but a single one always leaves room for others.
fn default_budget(pool_threads: usize) -> usize {
    if pool_threads <= 1 {
        1
    } else {
        (pool_threads / 2).max(2)
    }
}

/// A serving endpoint: one versioned catalog plus one base execution
/// context (and with it one worker pool) shared by every session. Cheap to
/// clone — clones serve the same catalog. `Sync`: hand `Arc<Server>` or a
/// clone to each connection thread and open a [`Session`] per connection.
#[derive(Debug, Clone, Default)]
pub struct Server {
    catalog: Arc<VersionedCatalog>,
    ctx: Arc<RmaContext>,
    metrics: Arc<MetricsRegistry>,
}

impl Server {
    /// A server with an empty catalog executing on `ctx`'s worker pool.
    pub fn new(ctx: RmaContext) -> Self {
        Server {
            catalog: Arc::new(VersionedCatalog::new()),
            ctx: Arc::new(ctx),
            metrics: Arc::new(MetricsRegistry::default()),
        }
    }

    /// The shared versioned catalog.
    pub fn catalog(&self) -> &Arc<VersionedCatalog> {
        &self.catalog
    }

    /// The server's base execution context (sessions fork it).
    pub fn context(&self) -> &RmaContext {
        &self.ctx
    }

    /// The server's metrics registry. Frontends that build their own
    /// session objects (e.g. the SQL engine) register their counter cell
    /// here; everything opened through [`Server::session`] registers
    /// automatically.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Snapshot the server's engine metrics: per-session counters, their
    /// totals, the worker pool's gauges (queue depth, queue-wait and
    /// busy time, utilization), and the catalog's storage footprint as
    /// physically held vs fully decoded (the live compression ratio).
    /// JSON via [`MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot(self.ctx.pool().stats());
        let catalog = self.catalog.snapshot();
        for name in catalog.table_names() {
            let Some(tab) = catalog.get(name) else {
                continue;
            };
            for c in tab.relation().columns() {
                snap.storage_encoded_bytes += c.encoded_bytes() as u64;
                snap.storage_plain_bytes += c.plain_bytes() as u64;
            }
        }
        snap
    }

    /// The seat budget [`Server::session`] assigns: half the pool, at
    /// least two seats on a multi-threaded pool. Frontends building their
    /// own session objects (e.g. the SQL engine) use this to match.
    pub fn default_budget(&self) -> usize {
        default_budget(self.ctx.pool().threads())
    }

    /// Open a session with the default seat budget (half the pool).
    pub fn session(&self) -> Session {
        self.session_with_budget(self.default_budget())
    }

    /// Open a session whose morsel jobs may occupy at most `seats` pool
    /// workers at once (`0` = no limit). Every session gets a fresh
    /// [`SessionTicket`] — the fair scheduler interleaves jobs across
    /// tickets by stride, so sessions share the pool proportionally
    /// regardless of submission order.
    pub fn session_with_budget(&self, seats: usize) -> Session {
        Session {
            catalog: Arc::clone(&self.catalog),
            ctx: self.ctx.fork(),
            ticket: SessionTicket::new(seats),
            counters: self.metrics.register_session(),
            deadline_ns: AtomicU64::new(0),
            mem_budget: AtomicU64::new(0),
            write_retry_limit: AtomicU32::new(DEFAULT_WRITE_RETRIES),
            active: Mutex::new(None),
            fault: Mutex::new(None),
        }
    }
}

/// `ctx.into()`: promote an execution context to a serving endpoint with
/// an empty catalog — the serve-layer spelling of "start sessions here".
impl From<RmaContext> for Server {
    fn from(ctx: RmaContext) -> Self {
        Server::new(ctx)
    }
}

/// Default cap on optimistic-commit attempts before
/// [`ServeError::Contention`] (see [`Session::set_write_retry_limit`]).
pub(crate) const DEFAULT_WRITE_RETRIES: u32 = 16;

/// One client's handle onto a [`Server`]: issues queries against pinned
/// catalog snapshots and writes through the first-committer-wins protocol.
///
/// A session is `Sync` (queries may be issued from several threads of one
/// client), but the intended concurrency unit is one session per
/// connection: the session's [`SessionTicket`] is what the fair scheduler
/// budgets, and its forked context is what its [`ExecStats`] attribute to.
#[derive(Debug)]
pub struct Session {
    catalog: Arc<VersionedCatalog>,
    ctx: RmaContext,
    ticket: SessionTicket,
    counters: Arc<SessionCounters>,
    /// Per-query deadline in nanoseconds (0 = none).
    deadline_ns: AtomicU64,
    /// Per-query memory budget in bytes (0 = inherit the context option,
    /// which itself defaults to unlimited).
    mem_budget: AtomicU64,
    /// Optimistic-commit attempts before [`ServeError::Contention`].
    write_retry_limit: AtomicU32,
    /// The guard of the query currently executing on this session, so
    /// [`Session::cancel`] can reach it from another thread.
    active: Mutex<Option<QueryGuard>>,
    /// One-shot fault plan armed for the next query
    /// ([`Session::inject_fault`], tests only).
    fault: Mutex<Option<FaultPlan>>,
}

impl Session {
    /// Run a [`Frame`] query against a snapshot pinned at call time: the
    /// query sees every table as of one catalog version, unaffected by
    /// concurrent commits, and resolves named scans
    /// ([`Frame::table`]) through the pin. The session's ticket is active
    /// for the duration, so all morsel jobs the plan submits are seat-
    /// budgeted and fairly scheduled.
    pub fn query(&self, frame: Frame) -> Result<Relation, PlanError> {
        self.query_at(&self.pin(), frame)
    }

    /// Run a query against an explicitly pinned snapshot (several queries
    /// against one pin see the identical database state).
    ///
    /// The whole governor pipeline runs here:
    ///
    /// 1. **Admission**: with a memory budget set, the PR 4 cost model
    ///    pre-estimates the result footprint and rejects hopeless queries
    ///    before they touch the pool (`RmaError::ResourceExhausted`) —
    ///    unless the plan contains a spillable operator
    ///    ([`crate::plan::spillable`]), in which case it is admitted and
    ///    runs out-of-core under the budget.
    /// 2. **Execution under a guard**: a fresh [`QueryGuard`] (deadline +
    ///    budget, plus any armed fault plan) governs every morsel claim
    ///    and operator boundary; [`Session::cancel`] reaches it from any
    ///    thread.
    /// 3. **Panic containment**: an operator panic is caught *here* —
    ///    never inside the pool, whose own state stays clean — and
    ///    returned as `RmaError::WorkerPanicked`.
    /// 4. **Accounting**: every governor action increments its
    ///    [`SessionCounters`] counter.
    pub fn query_at(&self, snap: &CatalogSnapshot, frame: Frame) -> Result<Relation, PlanError> {
        self.counters.record_query();
        let budget = self.effective_mem_budget();
        if budget > 0 {
            let est = stats::estimate(frame.logical_plan(), snap);
            // result footprint ≈ rows × columns × 8-byte cells; columns
            // default to 1 when the estimator lost track of the schema
            let est_bytes = (est.rows.max(0.0) as u64)
                .saturating_mul(est.cols.len().max(1) as u64)
                .saturating_mul(8);
            // a plan with a spillable operator (join / sort / keyed
            // aggregation) is admitted even over the estimate: the
            // out-of-core operators bound its resident working set, so
            // "too big for memory" now means "runs spilled", not "rejected"
            if est_bytes > budget && !crate::plan::spillable(frame.logical_plan()) {
                self.counters.record_mem_rejection();
                return Err(PlanError::Rma(RmaError::ResourceExhausted {
                    needed: est_bytes,
                    budget,
                }));
            }
        }
        let deadline_ns = self.deadline_ns.load(Ordering::Relaxed);
        let deadline = (deadline_ns > 0).then(|| Duration::from_nanos(deadline_ns));
        let guard = match self
            .fault
            .lock()
            .expect("session fault slot poisoned")
            .take()
        {
            Some(plan) => QueryGuard::with_fault(deadline, budget, plan),
            None => QueryGuard::with_limits(deadline, budget),
        };
        *self.active.lock().expect("session guard slot poisoned") = Some(guard.clone());
        let sinks0 = rma_storage::decode_sink_events();
        let result = {
            let _seat = self.ticket.activate();
            let _gov = guard.activate();
            // AssertUnwindSafe: on Err every captured structure is either
            // dropped (frame, guard) or internally synchronized and
            // poison-free (catalog snapshot, pool, atomics), so nothing
            // torn is ever observed afterwards
            catch_unwind(AssertUnwindSafe(|| frame.collect_with(&self.ctx, snap)))
        };
        *self.active.lock().expect("session guard slot poisoned") = None;
        let (spill_bytes, spill_parts) = (guard.spill_bytes(), guard.spill_partitions());
        if spill_bytes > 0 || spill_parts > 0 {
            self.counters.record_spill(spill_bytes, spill_parts);
        }
        // process-global monotonic counter: concurrent sessions may
        // attribute each other's sinks, fine for the aggregate signal
        let sinks = rma_storage::decode_sink_events().saturating_sub(sinks0);
        if sinks > 0 {
            self.counters.record_decode_sinks(sinks);
        }
        let out = match result {
            Ok(r) => r,
            Err(payload) => {
                self.counters.record_worker_panic();
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err(PlanError::Rma(RmaError::WorkerPanicked { message }));
            }
        };
        match &out {
            Err(PlanError::Rma(RmaError::Cancelled)) => self.counters.record_cancelled(),
            Err(PlanError::Rma(RmaError::DeadlineExceeded)) => self.counters.record_deadline_kill(),
            Err(PlanError::Rma(RmaError::ResourceExhausted { .. })) => {
                self.counters.record_mem_rejection()
            }
            _ => {}
        }
        let out = out?;
        self.counters.record_rows(out.len() as u64);
        Ok(out)
    }

    /// Cancel the query currently executing on this session, if any:
    /// its workers stop claiming morsels within one morsel's work and the
    /// query returns `RmaError::Cancelled`. Callable from any thread;
    /// returns whether a running query was actually signalled. A session
    /// with no query in flight is untouched (cancellation does not latch).
    pub fn cancel(&self) -> bool {
        match &*self.active.lock().expect("session guard slot poisoned") {
            Some(g) => {
                g.cancel();
                true
            }
            None => false,
        }
    }

    /// Set (or clear) the per-query deadline applied to subsequent
    /// queries. Measured from each query's start.
    pub fn set_deadline(&self, deadline: Option<Duration>) {
        self.deadline_ns.store(
            deadline.map_or(0, |d| (d.as_nanos() as u64).max(1)),
            Ordering::Relaxed,
        );
    }

    /// Set the per-query memory budget in bytes (`0` = inherit
    /// `RmaOptions::mem_budget`, itself 0-as-unlimited by default).
    pub fn set_mem_budget(&self, bytes: u64) {
        self.mem_budget.store(bytes, Ordering::Relaxed);
    }

    /// The budget queries of this session are held to: the session
    /// override when set, else the context option.
    fn effective_mem_budget(&self) -> u64 {
        match self.mem_budget.load(Ordering::Relaxed) {
            0 => self.ctx.options.mem_budget as u64,
            b => b,
        }
    }

    /// Cap the optimistic-commit attempts of [`Session::insert`] (default
    /// 16). `0` behaves as 1: always at least one attempt, never infinite.
    pub fn set_write_retry_limit(&self, attempts: u32) {
        self.write_retry_limit.store(attempts, Ordering::Relaxed);
    }

    /// Arm a one-shot fault plan for the next query on this session
    /// (deterministic robustness testing; see
    /// [`rma_relation::par::fault`]).
    pub fn inject_fault(&self, plan: FaultPlan) {
        *self.fault.lock().expect("session fault slot poisoned") = Some(plan);
    }

    /// Pin the current catalog state (O(1), lock-free thereafter).
    pub fn pin(&self) -> CatalogSnapshot {
        self.catalog.snapshot()
    }

    /// Append `rows` to a table through the optimistic commit loop:
    /// pin → prepare the successor generation
    /// ([`Relation::appended`]) → first-committer-wins commit; on a
    /// [`ServeError::WriteConflict`] the loop re-pins and re-prepares
    /// after a decorrelated-jitter [`Backoff`] sleep, so concurrent
    /// appenders all land (in some serial order) without ever blocking
    /// readers. Attempts are capped by
    /// [`Session::set_write_retry_limit`] (default 16); exhausting the
    /// cap returns [`ServeError::Contention`] rather than looping
    /// unboundedly under pathological write pressure. Returns the
    /// catalog version that installed the rows.
    pub fn insert(&self, table: &str, rows: &Relation) -> Result<u64, ServeError> {
        let limit = self.write_retry_limit.load(Ordering::Relaxed).max(1);
        let mut backoff = Backoff::default();
        for attempt in 1..=limit {
            let snap = self.pin();
            let Some(generation) = snap.get(table) else {
                return Err(ServeError::NoSuchTable(table.to_string()));
            };
            let next = generation
                .relation()
                .appended(rows)
                .map_err(|_| ServeError::NoSuchTable(table.to_string()))?;
            match self.catalog.commit(table, generation.generation(), next) {
                Ok(version) => return Ok(version),
                Err(ServeError::WriteConflict { .. }) => {
                    self.counters.record_conflict();
                    if attempt < limit {
                        backoff.sleep();
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(ServeError::Contention {
            table: table.to_string(),
            retries: limit,
        })
    }

    /// Create a table (errors if the name exists).
    pub fn create_table(&self, name: &str, rel: Relation) -> Result<u64, ServeError> {
        self.catalog.create(name, rel)
    }

    /// Create or overwrite a table unconditionally.
    pub fn create_or_replace(&self, name: &str, rel: Relation) -> u64 {
        self.catalog.create_or_replace(name, rel)
    }

    /// Drop a table (errors if absent). Pinned readers keep their view.
    pub fn drop_table(&self, name: &str) -> Result<u64, ServeError> {
        self.catalog.drop_table(name)
    }

    /// The session's scheduling ticket.
    pub fn ticket(&self) -> &SessionTicket {
        &self.ticket
    }

    /// The session's metrics counter cell (queries, rows, conflicts,
    /// retries) — the same cell the server's
    /// [`MetricsRegistry`](super::MetricsRegistry) snapshots.
    pub fn counters(&self) -> &Arc<SessionCounters> {
        &self.counters
    }

    /// The session's private execution context (shared pool, own stats).
    pub fn context(&self) -> &RmaContext {
        &self.ctx
    }

    /// Execution statistics of **this session only** — concurrent sessions
    /// on one server do not pollute each other's counters.
    pub fn stats(&self) -> ExecStats {
        self.ctx.stats()
    }

    /// Zero this session's statistics.
    pub fn reset_stats(&self) {
        self.ctx.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_relation::{AggSpec, RelationBuilder};
    use rma_storage::Value;

    fn rel(xs: Vec<i64>) -> Relation {
        RelationBuilder::new().column("x", xs).build().unwrap()
    }

    fn sum_of(s: &Session, table: &str) -> i64 {
        let r = s
            .query(Frame::table(table).aggregate(&[], vec![AggSpec::sum("x", "s")]))
            .unwrap();
        match r.column("s").unwrap().get(0) {
            Value::Int(v) => v,
            other => panic!("unexpected sum {other:?}"),
        }
    }

    #[test]
    fn session_queries_pinned_snapshots() {
        let server = Server::default();
        let writer = server.session();
        let reader = server.session();
        writer.create_table("t", rel(vec![1, 2, 3])).unwrap();
        assert_eq!(sum_of(&reader, "t"), 6);
        // a pinned snapshot shields a multi-query read from a concurrent
        // insert; a fresh query sees it
        let pin = reader.pin();
        writer.insert("t", &rel(vec![10])).unwrap();
        let before = reader
            .query_at(
                &pin,
                Frame::table("t").aggregate(&[], vec![AggSpec::sum("x", "s")]),
            )
            .unwrap();
        assert_eq!(before.column("s").unwrap().get(0), Value::Int(6));
        assert_eq!(sum_of(&reader, "t"), 16);
    }

    #[test]
    fn insert_retries_past_conflicts() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel(vec![0])).unwrap();
        std::thread::scope(|scope| {
            for k in 0..4 {
                let session = server.session();
                scope.spawn(move || {
                    for i in 0..10 {
                        session.insert("t", &rel(vec![k * 100 + i])).unwrap();
                    }
                });
            }
        });
        let r = s
            .query(Frame::table("t").aggregate(&[], vec![AggSpec::count_star("n")]))
            .unwrap();
        assert_eq!(r.column("n").unwrap().get(0), Value::Int(41));
    }

    #[test]
    fn per_session_stats_do_not_mix() {
        let server = Server::default();
        let busy = server.session();
        let idle = server.session();
        busy.create_table("m", {
            RelationBuilder::new()
                .column("k", vec!["a", "b"])
                .column("v1", vec![2.0f64, 0.0])
                .column("v2", vec![0.0f64, 2.0])
                .build()
                .unwrap()
        })
        .unwrap();
        // an RMA operation records ops_run on the issuing session only
        let inverted = busy
            .query(Frame::table("m").rma_unary(crate::shape::RmaOp::Inv, &["k"]))
            .unwrap();
        assert_eq!(inverted.len(), 2);
        assert!(busy.stats().ops_run >= 1);
        assert_eq!(idle.stats().ops_run, 0);
        assert_eq!(server.context().stats().ops_run, 0);
    }

    #[test]
    fn budgets_and_tickets_are_per_session() {
        let server = Server::default();
        let a = server.session_with_budget(2);
        let b = server.session_with_budget(0);
        assert_eq!(a.ticket().seats(), 2);
        assert_eq!(b.ticket().seats(), 0);
        assert_eq!(default_budget(1), 1);
        assert_eq!(default_budget(2), 2);
        assert_eq!(default_budget(8), 4);
    }

    #[test]
    fn deadline_kill_returns_typed_error_and_counts() {
        let server = Server::default();
        let s = server.session();
        let n = 4096;
        s.create_table("t", rel((0..n).collect())).unwrap();
        s.set_deadline(Some(Duration::from_nanos(1)));
        let err = s
            .query(Frame::table("t").aggregate(&[], vec![AggSpec::sum("x", "s")]))
            .unwrap_err();
        assert!(
            matches!(err, PlanError::Rma(RmaError::DeadlineExceeded)),
            "got {err:?}"
        );
        assert_eq!(s.counters().snapshot().deadline_kills, 1);
        // the session is not poisoned: clearing the deadline works
        s.set_deadline(None);
        assert_eq!(sum_of(&s, "t"), (0..n).sum::<i64>());
    }

    #[test]
    fn admission_rejects_over_budget_queries() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel((0..1000).collect())).unwrap();
        s.set_mem_budget(64); // far below 1000 rows × 8 bytes
        let err = s.query(Frame::table("t")).unwrap_err();
        match err {
            PlanError::Rma(RmaError::ResourceExhausted { needed, budget }) => {
                assert_eq!(budget, 64);
                assert!(needed > 64, "estimate {needed} should exceed the budget");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert_eq!(s.counters().snapshot().mem_rejections, 1);
        // budget 0 = unlimited restores service
        s.set_mem_budget(0);
        assert_eq!(s.query(Frame::table("t")).unwrap().len(), 1000);
    }

    #[test]
    fn injected_panic_becomes_typed_error_and_session_survives() {
        use rma_relation::par::fault::{FaultKind, FaultPlan};
        // a multi-threaded pool so morsel claim loops (and their fault
        // polls) actually run, whatever machine hosts the test
        let ctx = RmaContext::new(crate::RmaOptions {
            threads: 2,
            ..Default::default()
        });
        let server = Server::new(ctx);
        let s = server.session();
        let n = 100_000; // large enough for parallel morsel claims
        s.create_table("t", rel((0..n).collect())).unwrap();
        s.inject_fault(FaultPlan::new(FaultKind::Panic, 0));
        let err = s
            .query(Frame::table("t").aggregate(&[], vec![AggSpec::sum("x", "s")]))
            .unwrap_err();
        // the panic fires on whichever thread claims the chosen morsel:
        // on the submitter the payload carries the injection message, on a
        // pool worker it surfaces via the pool's re-panic — both must
        // arrive as the typed variant
        assert!(
            matches!(&err, PlanError::Rma(RmaError::WorkerPanicked { .. })),
            "got {err:?}"
        );
        assert_eq!(s.counters().snapshot().worker_panics, 1);
        // the fault plan was one-shot and nothing is poisoned
        assert_eq!(sum_of(&s, "t"), (0..n).sum::<i64>());
    }

    #[test]
    fn cancel_without_running_query_is_a_noop() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel(vec![1, 2])).unwrap();
        assert!(!s.cancel(), "no query in flight to signal");
        assert_eq!(sum_of(&s, "t"), 3, "cancellation must not latch");
        assert_eq!(s.counters().snapshot().queries_cancelled, 0);
    }

    #[test]
    fn insert_gives_up_under_synthetic_contention() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel(vec![0])).unwrap();
        s.set_write_retry_limit(3);
        // make every commit lose the race: move the generation between the
        // session's pin and its commit by racing a tight writer loop
        let stop = std::sync::atomic::AtomicBool::new(false);
        let err = std::thread::scope(|scope| {
            let racer = server.session();
            let stop_ref = &stop;
            scope.spawn(move || {
                while !stop_ref.load(Ordering::Relaxed) {
                    let _ = racer.insert("t", &rel(vec![7]));
                }
            });
            // with a 3-attempt cap and a saturating racer, some insert
            // eventually exhausts its budget
            let mut last = None;
            for _ in 0..200 {
                if let Err(e) = s.insert("t", &rel(vec![1])) {
                    last = Some(e);
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
            last
        });
        if let Some(e) = err {
            assert_eq!(
                e,
                ServeError::Contention {
                    table: "t".to_string(),
                    retries: 3
                }
            );
        }
        // contention or not, the session keeps serving
        assert!(s.query(Frame::table("t")).is_ok());
    }

    #[test]
    fn dropped_table_stays_readable_through_pin() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel(vec![5])).unwrap();
        let pin = s.pin();
        s.drop_table("t").unwrap();
        assert!(s.query(Frame::table("t")).is_err(), "fresh query: gone");
        let r = s.query_at(&pin, Frame::table("t")).unwrap();
        assert_eq!(r.len(), 1, "pinned query still sees the table");
    }
}
