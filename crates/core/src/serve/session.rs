//! Servers and sessions: concurrent query front ends over the versioned
//! catalog and the shared worker pool.

use super::catalog::{CatalogSnapshot, VersionedCatalog};
use super::metrics::{MetricsRegistry, MetricsSnapshot, SessionCounters};
use super::ServeError;
use crate::context::{ExecStats, RmaContext};
use crate::plan::{Frame, PlanError};
use rma_relation::{Relation, SessionTicket};
use std::sync::Arc;

/// The default per-session seat budget: half the pool (at least two seats
/// when the pool has more than one thread), so two heavy sessions saturate
/// the machine but a single one always leaves room for others.
fn default_budget(pool_threads: usize) -> usize {
    if pool_threads <= 1 {
        1
    } else {
        (pool_threads / 2).max(2)
    }
}

/// A serving endpoint: one versioned catalog plus one base execution
/// context (and with it one worker pool) shared by every session. Cheap to
/// clone — clones serve the same catalog. `Sync`: hand `Arc<Server>` or a
/// clone to each connection thread and open a [`Session`] per connection.
#[derive(Debug, Clone, Default)]
pub struct Server {
    catalog: Arc<VersionedCatalog>,
    ctx: Arc<RmaContext>,
    metrics: Arc<MetricsRegistry>,
}

impl Server {
    /// A server with an empty catalog executing on `ctx`'s worker pool.
    pub fn new(ctx: RmaContext) -> Self {
        Server {
            catalog: Arc::new(VersionedCatalog::new()),
            ctx: Arc::new(ctx),
            metrics: Arc::new(MetricsRegistry::default()),
        }
    }

    /// The shared versioned catalog.
    pub fn catalog(&self) -> &Arc<VersionedCatalog> {
        &self.catalog
    }

    /// The server's base execution context (sessions fork it).
    pub fn context(&self) -> &RmaContext {
        &self.ctx
    }

    /// The server's metrics registry. Frontends that build their own
    /// session objects (e.g. the SQL engine) register their counter cell
    /// here; everything opened through [`Server::session`] registers
    /// automatically.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Snapshot the server's engine metrics: per-session counters, their
    /// totals, and the worker pool's gauges (queue depth, queue-wait and
    /// busy time, utilization). JSON via
    /// [`MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.ctx.pool().stats())
    }

    /// The seat budget [`Server::session`] assigns: half the pool, at
    /// least two seats on a multi-threaded pool. Frontends building their
    /// own session objects (e.g. the SQL engine) use this to match.
    pub fn default_budget(&self) -> usize {
        default_budget(self.ctx.pool().threads())
    }

    /// Open a session with the default seat budget (half the pool).
    pub fn session(&self) -> Session {
        self.session_with_budget(self.default_budget())
    }

    /// Open a session whose morsel jobs may occupy at most `seats` pool
    /// workers at once (`0` = no limit). Every session gets a fresh
    /// [`SessionTicket`] — the fair scheduler interleaves jobs across
    /// tickets by stride, so sessions share the pool proportionally
    /// regardless of submission order.
    pub fn session_with_budget(&self, seats: usize) -> Session {
        Session {
            catalog: Arc::clone(&self.catalog),
            ctx: self.ctx.fork(),
            ticket: SessionTicket::new(seats),
            counters: self.metrics.register_session(),
        }
    }
}

/// `ctx.into()`: promote an execution context to a serving endpoint with
/// an empty catalog — the serve-layer spelling of "start sessions here".
impl From<RmaContext> for Server {
    fn from(ctx: RmaContext) -> Self {
        Server::new(ctx)
    }
}

/// One client's handle onto a [`Server`]: issues queries against pinned
/// catalog snapshots and writes through the first-committer-wins protocol.
///
/// A session is `Sync` (queries may be issued from several threads of one
/// client), but the intended concurrency unit is one session per
/// connection: the session's [`SessionTicket`] is what the fair scheduler
/// budgets, and its forked context is what its [`ExecStats`] attribute to.
#[derive(Debug)]
pub struct Session {
    catalog: Arc<VersionedCatalog>,
    ctx: RmaContext,
    ticket: SessionTicket,
    counters: Arc<SessionCounters>,
}

impl Session {
    /// Run a [`Frame`] query against a snapshot pinned at call time: the
    /// query sees every table as of one catalog version, unaffected by
    /// concurrent commits, and resolves named scans
    /// ([`Frame::table`]) through the pin. The session's ticket is active
    /// for the duration, so all morsel jobs the plan submits are seat-
    /// budgeted and fairly scheduled.
    pub fn query(&self, frame: Frame) -> Result<Relation, PlanError> {
        self.query_at(&self.pin(), frame)
    }

    /// Run a query against an explicitly pinned snapshot (several queries
    /// against one pin see the identical database state).
    pub fn query_at(&self, snap: &CatalogSnapshot, frame: Frame) -> Result<Relation, PlanError> {
        let _seat = self.ticket.activate();
        self.counters.record_query();
        let out = frame.collect_with(&self.ctx, snap)?;
        self.counters.record_rows(out.len() as u64);
        Ok(out)
    }

    /// Pin the current catalog state (O(1), lock-free thereafter).
    pub fn pin(&self) -> CatalogSnapshot {
        self.catalog.snapshot()
    }

    /// Append `rows` to a table through the optimistic commit loop:
    /// pin → prepare the successor generation
    /// ([`Relation::appended`]) → first-committer-wins commit; on a
    /// [`ServeError::WriteConflict`] the loop re-pins and re-prepares, so
    /// concurrent appenders all land (in some serial order) without ever
    /// blocking readers. Returns the catalog version that installed the
    /// rows.
    pub fn insert(&self, table: &str, rows: &Relation) -> Result<u64, ServeError> {
        loop {
            let snap = self.pin();
            let Some(generation) = snap.get(table) else {
                return Err(ServeError::NoSuchTable(table.to_string()));
            };
            let next = generation
                .relation()
                .appended(rows)
                .map_err(|_| ServeError::NoSuchTable(table.to_string()))?;
            match self.catalog.commit(table, generation.generation(), next) {
                Ok(version) => return Ok(version),
                Err(ServeError::WriteConflict { .. }) => {
                    self.counters.record_conflict();
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Create a table (errors if the name exists).
    pub fn create_table(&self, name: &str, rel: Relation) -> Result<u64, ServeError> {
        self.catalog.create(name, rel)
    }

    /// Create or overwrite a table unconditionally.
    pub fn create_or_replace(&self, name: &str, rel: Relation) -> u64 {
        self.catalog.create_or_replace(name, rel)
    }

    /// Drop a table (errors if absent). Pinned readers keep their view.
    pub fn drop_table(&self, name: &str) -> Result<u64, ServeError> {
        self.catalog.drop_table(name)
    }

    /// The session's scheduling ticket.
    pub fn ticket(&self) -> &SessionTicket {
        &self.ticket
    }

    /// The session's metrics counter cell (queries, rows, conflicts,
    /// retries) — the same cell the server's
    /// [`MetricsRegistry`](super::MetricsRegistry) snapshots.
    pub fn counters(&self) -> &Arc<SessionCounters> {
        &self.counters
    }

    /// The session's private execution context (shared pool, own stats).
    pub fn context(&self) -> &RmaContext {
        &self.ctx
    }

    /// Execution statistics of **this session only** — concurrent sessions
    /// on one server do not pollute each other's counters.
    pub fn stats(&self) -> ExecStats {
        self.ctx.stats()
    }

    /// Zero this session's statistics.
    pub fn reset_stats(&self) {
        self.ctx.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_relation::{AggSpec, RelationBuilder};
    use rma_storage::Value;

    fn rel(xs: Vec<i64>) -> Relation {
        RelationBuilder::new().column("x", xs).build().unwrap()
    }

    fn sum_of(s: &Session, table: &str) -> i64 {
        let r = s
            .query(Frame::table(table).aggregate(&[], vec![AggSpec::sum("x", "s")]))
            .unwrap();
        match r.column("s").unwrap().get(0) {
            Value::Int(v) => v,
            other => panic!("unexpected sum {other:?}"),
        }
    }

    #[test]
    fn session_queries_pinned_snapshots() {
        let server = Server::default();
        let writer = server.session();
        let reader = server.session();
        writer.create_table("t", rel(vec![1, 2, 3])).unwrap();
        assert_eq!(sum_of(&reader, "t"), 6);
        // a pinned snapshot shields a multi-query read from a concurrent
        // insert; a fresh query sees it
        let pin = reader.pin();
        writer.insert("t", &rel(vec![10])).unwrap();
        let before = reader
            .query_at(
                &pin,
                Frame::table("t").aggregate(&[], vec![AggSpec::sum("x", "s")]),
            )
            .unwrap();
        assert_eq!(before.column("s").unwrap().get(0), Value::Int(6));
        assert_eq!(sum_of(&reader, "t"), 16);
    }

    #[test]
    fn insert_retries_past_conflicts() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel(vec![0])).unwrap();
        std::thread::scope(|scope| {
            for k in 0..4 {
                let session = server.session();
                scope.spawn(move || {
                    for i in 0..10 {
                        session.insert("t", &rel(vec![k * 100 + i])).unwrap();
                    }
                });
            }
        });
        let r = s
            .query(Frame::table("t").aggregate(&[], vec![AggSpec::count_star("n")]))
            .unwrap();
        assert_eq!(r.column("n").unwrap().get(0), Value::Int(41));
    }

    #[test]
    fn per_session_stats_do_not_mix() {
        let server = Server::default();
        let busy = server.session();
        let idle = server.session();
        busy.create_table("m", {
            RelationBuilder::new()
                .column("k", vec!["a", "b"])
                .column("v1", vec![2.0f64, 0.0])
                .column("v2", vec![0.0f64, 2.0])
                .build()
                .unwrap()
        })
        .unwrap();
        // an RMA operation records ops_run on the issuing session only
        let inverted = busy
            .query(Frame::table("m").rma_unary(crate::shape::RmaOp::Inv, &["k"]))
            .unwrap();
        assert_eq!(inverted.len(), 2);
        assert!(busy.stats().ops_run >= 1);
        assert_eq!(idle.stats().ops_run, 0);
        assert_eq!(server.context().stats().ops_run, 0);
    }

    #[test]
    fn budgets_and_tickets_are_per_session() {
        let server = Server::default();
        let a = server.session_with_budget(2);
        let b = server.session_with_budget(0);
        assert_eq!(a.ticket().seats(), 2);
        assert_eq!(b.ticket().seats(), 0);
        assert_eq!(default_budget(1), 1);
        assert_eq!(default_budget(2), 2);
        assert_eq!(default_budget(8), 4);
    }

    #[test]
    fn dropped_table_stays_readable_through_pin() {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", rel(vec![5])).unwrap();
        let pin = s.pin();
        s.drop_table("t").unwrap();
        assert!(s.query(Frame::table("t")).is_err(), "fresh query: gone");
        let r = s.query_at(&pin, Frame::table("t")).unwrap();
        assert_eq!(r.len(), 1, "pinned query still sees the table");
    }
}
