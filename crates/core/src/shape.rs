//! Shape types of the matrix operations (the paper's Table 1).
//!
//! Every matrix operation is *shape restricted*: each result dimension
//! equals the row count of an input, the column count of an input, or one.
//! The shape type `(x, y)` drives the inheritance of contextual information
//! (Table 3): e.g. `x = r1` means the row origin is the order part of the
//! first argument.

use std::fmt;

/// One dimension of a shape type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Rows of the first argument.
    R1,
    /// Rows of the second argument.
    R2,
    /// Rows of both arguments (they must agree).
    RStar,
    /// Columns (application attributes) of the first argument.
    C1,
    /// Columns of the second argument.
    C2,
    /// Columns of both arguments.
    CStar,
    /// Constant one.
    One,
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::R1 => "r1",
            Dim::R2 => "r2",
            Dim::RStar => "r*",
            Dim::C1 => "c1",
            Dim::C2 => "c2",
            Dim::CStar => "c*",
            Dim::One => "1",
        };
        f.write_str(s)
    }
}

/// The shape type `(rows, cols)` of an operation's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeType {
    /// Where the result's row count comes from.
    pub rows: Dim,
    /// Where the result's column count comes from.
    pub cols: Dim,
}

/// The 19 relational matrix operations of RMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmaOp {
    /// Element-wise multiplication `emu_{U;V}`.
    Emu,
    /// Matrix multiplication `mmu_{U;V}`.
    Mmu,
    /// Outer product `opd_{U;V}` (`ABᵀ`).
    Opd,
    /// Cross product `cpd_{U;V}` (`AᵀB`).
    Cpd,
    /// Matrix addition `add_{U;V}`.
    Add,
    /// Matrix subtraction `sub_{U;V}`.
    Sub,
    /// Transpose `tra_U`.
    Tra,
    /// Linear solve `sol_{U;V}`.
    Sol,
    /// Matrix inversion `inv_U`.
    Inv,
    /// Eigenvectors `evc_U`.
    Evc,
    /// Eigenvalues `evl_U`.
    Evl,
    /// Q of the QR decomposition `qqr_U`.
    Qqr,
    /// R of the QR decomposition `rqr_U`.
    Rqr,
    /// Diagonal singular-value matrix `dsv_U`.
    Dsv,
    /// Left singular vectors `usv_U`.
    Usv,
    /// Singular-value column `vsv_U`.
    Vsv,
    /// Determinant `det_U`.
    Det,
    /// Rank `rnk_U`.
    Rnk,
    /// Cholesky factor `chf_U`.
    Chf,
}

impl RmaOp {
    /// Lower-case operation name (used for SQL syntax and the constant
    /// column origins of shape-`1` dimensions).
    pub fn name(self) -> &'static str {
        match self {
            RmaOp::Emu => "emu",
            RmaOp::Mmu => "mmu",
            RmaOp::Opd => "opd",
            RmaOp::Cpd => "cpd",
            RmaOp::Add => "add",
            RmaOp::Sub => "sub",
            RmaOp::Tra => "tra",
            RmaOp::Sol => "sol",
            RmaOp::Inv => "inv",
            RmaOp::Evc => "evc",
            RmaOp::Evl => "evl",
            RmaOp::Qqr => "qqr",
            RmaOp::Rqr => "rqr",
            RmaOp::Dsv => "dsv",
            RmaOp::Usv => "usv",
            RmaOp::Vsv => "vsv",
            RmaOp::Det => "det",
            RmaOp::Rnk => "rnk",
            RmaOp::Chf => "chf",
        }
    }

    /// Parse an operation name (case-insensitive); used by the SQL frontend.
    pub fn parse(name: &str) -> Option<RmaOp> {
        let lower = name.to_ascii_lowercase();
        ALL_OPS.iter().copied().find(|op| op.name() == lower)
    }

    /// Is this a binary operation (two argument relations)?
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            RmaOp::Emu
                | RmaOp::Mmu
                | RmaOp::Opd
                | RmaOp::Cpd
                | RmaOp::Add
                | RmaOp::Sub
                | RmaOp::Sol
        )
    }

    /// The shape type per Table 1.
    pub fn shape(self) -> ShapeType {
        use Dim::*;
        let (rows, cols) = match self {
            RmaOp::Usv => (R1, R1),
            RmaOp::Opd => (R1, R2),
            RmaOp::Inv | RmaOp::Evc | RmaOp::Chf | RmaOp::Qqr => (R1, C1),
            RmaOp::Mmu => (R1, C2),
            RmaOp::Evl | RmaOp::Vsv => (R1, One),
            RmaOp::Tra => (C1, R1),
            RmaOp::Rqr | RmaOp::Dsv => (C1, C1),
            RmaOp::Cpd | RmaOp::Sol => (C1, C2),
            RmaOp::Emu | RmaOp::Add | RmaOp::Sub => (RStar, CStar),
            RmaOp::Det | RmaOp::Rnk => (One, One),
        };
        ShapeType { rows, cols }
    }

    /// Does the operation require a square application part?
    pub fn requires_square(self) -> bool {
        matches!(
            self,
            RmaOp::Inv | RmaOp::Evc | RmaOp::Evl | RmaOp::Chf | RmaOp::Det
        )
    }

    /// Does the result row order follow the (sorted) rows of the first
    /// argument? When false, permuting input rows permutes or leaves the
    /// result unchanged, so the engine may skip sorting (§8.1).
    pub fn result_depends_on_row_order(self) -> bool {
        match self {
            // Q rows (thin QR with positive diagonal is unique, and
            // Q(P·A) = P·Q(A)), outer-product rows and mmu rows permute
            // exactly with the input; cpd/rqr/dsv/rnk/sol are row-permutation
            // invariant.
            RmaOp::Qqr | RmaOp::Opd | RmaOp::Mmu => false,
            RmaOp::Cpd | RmaOp::Rqr | RmaOp::Dsv | RmaOp::Rnk | RmaOp::Sol => false,
            // inversion/eigen/cholesky couple row and column order; det's
            // sign flips under odd permutations; tra's columns must align
            // with the sorted column cast; evl/vsv pair the k-th sorted row
            // with the k-th eigen/singular value; usv's column names ▽U are
            // the sorted key values, and SVD's non-uniqueness makes the
            // permuted factor a different (if equally valid) base result;
            // element-wise ops align two relations (handled by relative
            // sorting instead).
            RmaOp::Inv
            | RmaOp::Evc
            | RmaOp::Evl
            | RmaOp::Vsv
            | RmaOp::Usv
            | RmaOp::Chf
            | RmaOp::Det
            | RmaOp::Tra
            | RmaOp::Emu
            | RmaOp::Add
            | RmaOp::Sub => true,
        }
    }
}

/// All operations, in the paper's listing order.
pub const ALL_OPS: [RmaOp; 19] = [
    RmaOp::Emu,
    RmaOp::Mmu,
    RmaOp::Opd,
    RmaOp::Cpd,
    RmaOp::Add,
    RmaOp::Sub,
    RmaOp::Tra,
    RmaOp::Sol,
    RmaOp::Inv,
    RmaOp::Evc,
    RmaOp::Evl,
    RmaOp::Qqr,
    RmaOp::Rqr,
    RmaOp::Dsv,
    RmaOp::Usv,
    RmaOp::Vsv,
    RmaOp::Det,
    RmaOp::Rnk,
    RmaOp::Chf,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        use Dim::*;
        assert_eq!(RmaOp::Usv.shape(), ShapeType { rows: R1, cols: R1 });
        assert_eq!(RmaOp::Opd.shape(), ShapeType { rows: R1, cols: R2 });
        assert_eq!(RmaOp::Inv.shape(), ShapeType { rows: R1, cols: C1 });
        assert_eq!(RmaOp::Mmu.shape(), ShapeType { rows: R1, cols: C2 });
        assert_eq!(
            RmaOp::Evl.shape(),
            ShapeType {
                rows: R1,
                cols: One
            }
        );
        assert_eq!(RmaOp::Tra.shape(), ShapeType { rows: C1, cols: R1 });
        assert_eq!(RmaOp::Rqr.shape(), ShapeType { rows: C1, cols: C1 });
        assert_eq!(RmaOp::Cpd.shape(), ShapeType { rows: C1, cols: C2 });
        assert_eq!(
            RmaOp::Add.shape(),
            ShapeType {
                rows: RStar,
                cols: CStar
            }
        );
        assert_eq!(
            RmaOp::Det.shape(),
            ShapeType {
                rows: One,
                cols: One
            }
        );
    }

    #[test]
    fn binary_classification() {
        assert!(RmaOp::Mmu.is_binary());
        assert!(RmaOp::Sol.is_binary());
        assert!(!RmaOp::Inv.is_binary());
        assert!(!RmaOp::Tra.is_binary());
        assert_eq!(ALL_OPS.iter().filter(|o| o.is_binary()).count(), 7);
    }

    #[test]
    fn parse_names() {
        assert_eq!(RmaOp::parse("INV"), Some(RmaOp::Inv));
        assert_eq!(RmaOp::parse("qqr"), Some(RmaOp::Qqr));
        assert_eq!(RmaOp::parse("Mmu"), Some(RmaOp::Mmu));
        assert_eq!(RmaOp::parse("nope"), None);
        // every op round-trips
        for op in ALL_OPS {
            assert_eq!(RmaOp::parse(op.name()), Some(op));
        }
    }

    #[test]
    fn square_requirements() {
        assert!(RmaOp::Inv.requires_square());
        assert!(RmaOp::Det.requires_square());
        assert!(!RmaOp::Qqr.requires_square());
        assert!(!RmaOp::Rnk.requires_square());
    }

    #[test]
    fn sort_avoidance_classification() {
        assert!(!RmaOp::Qqr.result_depends_on_row_order());
        assert!(RmaOp::Inv.result_depends_on_row_order());
        assert!(RmaOp::Det.result_depends_on_row_order());
        assert!(!RmaOp::Cpd.result_depends_on_row_order());
    }

    #[test]
    fn display_dims() {
        assert_eq!(Dim::RStar.to_string(), "r*");
        assert_eq!(Dim::One.to_string(), "1");
    }
}
