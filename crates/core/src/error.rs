//! Error type for the relational matrix algebra.

use rma_linalg::LinalgError;
use rma_relation::RelationError;
use rma_storage::StorageError;
use std::fmt;

/// Errors produced by relational matrix operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RmaError {
    /// The order schema must form a key of the argument relation.
    OrderSchemaNotKey(Vec<String>),
    /// An application-schema attribute is not numeric.
    NonNumericApplication {
        /// Name of the offending attribute.
        attribute: String,
    },
    /// `tra`/`usv` (and `opd`'s second argument) require an order schema of
    /// cardinality one, because its values become attribute names.
    OrderSchemaCardinality {
        /// The operation that rejected the order schema.
        op: &'static str,
        /// The cardinality actually supplied.
        found: usize,
    },
    /// The application schema is empty — there is no matrix to operate on.
    EmptyApplication,
    /// `add`/`sub`/`emu` need union-compatible application schemas.
    ApplicationNotUnionCompatible,
    /// `add`/`sub`/`emu` need equally many tuples in both relations.
    TupleCountMismatch {
        /// Tuple count of the first argument.
        left: usize,
        /// Tuple count of the second argument.
        right: usize,
    },
    /// Binary element-wise operations require non-overlapping order schemas
    /// (the result schema is `U ◦ V ◦ U̅`).
    OverlappingOrderSchemas(String),
    /// `det`/`rnk` row origin needs a named relation.
    UnnamedRelation {
        /// The operation that needed the name.
        op: &'static str,
    },
    /// A column-cast value would produce a duplicate or empty attribute name.
    BadOriginName(String),
    /// Underlying relational error.
    Relation(RelationError),
    /// Underlying matrix-kernel error.
    Linalg(LinalgError),
    /// Underlying storage error.
    Storage(StorageError),
}

impl fmt::Display for RmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmaError::OrderSchemaNotKey(attrs) => {
                write!(f, "order schema {attrs:?} does not form a key")
            }
            RmaError::NonNumericApplication { attribute } => write!(
                f,
                "application attribute `{attribute}` is not numeric; project it away or add it to the order schema"
            ),
            RmaError::OrderSchemaCardinality { op, found } => write!(
                f,
                "{op} requires an order schema with exactly one attribute (found {found})"
            ),
            RmaError::EmptyApplication => {
                f.write_str("empty application schema: no matrix values to operate on")
            }
            RmaError::ApplicationNotUnionCompatible => {
                f.write_str("application schemas are not union compatible")
            }
            RmaError::TupleCountMismatch { left, right } => {
                write!(f, "tuple count mismatch: {left} vs {right}")
            }
            RmaError::OverlappingOrderSchemas(name) => {
                write!(f, "order schemas overlap on attribute `{name}`")
            }
            RmaError::UnnamedRelation { op } => write!(
                f,
                "{op} requires a named relation (the name is the row origin)"
            ),
            RmaError::BadOriginName(n) => {
                write!(f, "origin value `{n}` cannot be used as an attribute name")
            }
            RmaError::Relation(e) => write!(f, "{e}"),
            RmaError::Linalg(e) => write!(f, "{e}"),
            RmaError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmaError::Relation(e) => Some(e),
            RmaError::Linalg(e) => Some(e),
            RmaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for RmaError {
    fn from(e: RelationError) -> Self {
        match e {
            RelationError::NotAKey(attrs) => RmaError::OrderSchemaNotKey(attrs),
            other => RmaError::Relation(other),
        }
    }
}

impl From<LinalgError> for RmaError {
    fn from(e: LinalgError) -> Self {
        RmaError::Linalg(e)
    }
}

impl From<StorageError> for RmaError {
    fn from(e: StorageError) -> Self {
        RmaError::Storage(e)
    }
}
