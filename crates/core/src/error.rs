//! Error type for the relational matrix algebra — and the engine's error
//! taxonomy in one place.
//!
//! Errors layer the way the crates do, each level wrapping the one below
//! via `From` so `?` composes across the stack:
//!
//! ```text
//! StorageError ──► RelationError ──► RmaError ──► PlanError ──► SqlError
//!                  (schema/algebra)  (matrix ops,  (planning,    (parse,
//!                                     governor)     execution)    binding)
//! ```
//!
//! Three families of [`RmaError`] variants are worth distinguishing:
//!
//! - **Semantic errors** (`OrderSchemaNotKey`, `EmptyApplication`, …):
//!   the query itself is malformed with respect to the RMA model. These
//!   are deterministic — the same query fails the same way every time.
//! - **Governance errors** (`Cancelled`, `DeadlineExceeded`,
//!   `ResourceExhausted`, `WorkerPanicked`, `WriteContention`): nothing is
//!   wrong with the query; the *engine* stopped it to protect the process
//!   or its neighbours. They originate in the per-query
//!   [`QueryGuard`](rma_relation::QueryGuard) (cancel flag, deadline,
//!   memory budget — checked at every morsel claim and operator
//!   boundary), the worker pool's panic recovery, or the optimistic
//!   commit loop's retry cap. Retrying, raising the budget, or waiting
//!   out contention can all succeed where the first attempt failed.
//! - **Wrapped lower-layer errors** (`Relation`, `Linalg`, `Storage`):
//!   pass-throughs that keep the source chain intact
//!   (`std::error::Error::source`).
//!
//! The governance variants are *typed, not panics* by design: a serving
//! process must be able to kill one query (deadline, cancel, budget, or
//! even an operator panic) and keep every other session running. The
//! fault-injection tests in `rma_relation::par::fault` exist to hold that
//! property.

use rma_linalg::LinalgError;
use rma_relation::RelationError;
use rma_storage::StorageError;
use std::fmt;

/// Errors produced by relational matrix operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RmaError {
    /// The order schema must form a key of the argument relation.
    OrderSchemaNotKey(Vec<String>),
    /// An application-schema attribute is not numeric.
    NonNumericApplication {
        /// Name of the offending attribute.
        attribute: String,
    },
    /// `tra`/`usv` (and `opd`'s second argument) require an order schema of
    /// cardinality one, because its values become attribute names.
    OrderSchemaCardinality {
        /// The operation that rejected the order schema.
        op: &'static str,
        /// The cardinality actually supplied.
        found: usize,
    },
    /// The application schema is empty — there is no matrix to operate on.
    EmptyApplication,
    /// `add`/`sub`/`emu` need union-compatible application schemas.
    ApplicationNotUnionCompatible,
    /// `add`/`sub`/`emu` need equally many tuples in both relations.
    TupleCountMismatch {
        /// Tuple count of the first argument.
        left: usize,
        /// Tuple count of the second argument.
        right: usize,
    },
    /// Binary element-wise operations require non-overlapping order schemas
    /// (the result schema is `U ◦ V ◦ U̅`).
    OverlappingOrderSchemas(String),
    /// `det`/`rnk` row origin needs a named relation.
    UnnamedRelation {
        /// The operation that needed the name.
        op: &'static str,
    },
    /// A column-cast value would produce a duplicate or empty attribute name.
    BadOriginName(String),
    /// Underlying relational error.
    Relation(RelationError),
    /// Underlying matrix-kernel error.
    Linalg(LinalgError),
    /// Underlying storage error.
    Storage(StorageError),
    /// The query was cancelled (`Session::cancel` or a dropped guard);
    /// execution stopped within one morsel's work.
    Cancelled,
    /// The query ran past its deadline (`Session::set_deadline` /
    /// `RmaOptions`-minted guard).
    DeadlineExceeded,
    /// The query's memory accounting exceeded its budget — either at
    /// admission (pre-flight cost-model estimate) or mid-flight at a
    /// materialization point.
    ResourceExhausted {
        /// Bytes the query needed (estimated or charged so far).
        needed: u64,
        /// The budget it was held to.
        budget: u64,
    },
    /// An operator panicked on a pool worker; the panic was caught at the
    /// session boundary and the pool, catalog, and metrics all survived.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An optimistic write lost the first-committer-wins race more times
    /// than the retry cap allows.
    WriteContention {
        /// How many commit attempts were made before giving up.
        retries: u32,
    },
    /// An out-of-core operator failed to read or write a spill file. The
    /// query dies with this typed error; the session, its temp files
    /// (removed on drop), and every other query survive.
    SpillIo(String),
}

impl fmt::Display for RmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmaError::OrderSchemaNotKey(attrs) => {
                write!(f, "order schema {attrs:?} does not form a key")
            }
            RmaError::NonNumericApplication { attribute } => write!(
                f,
                "application attribute `{attribute}` is not numeric; project it away or add it to the order schema"
            ),
            RmaError::OrderSchemaCardinality { op, found } => write!(
                f,
                "{op} requires an order schema with exactly one attribute (found {found})"
            ),
            RmaError::EmptyApplication => {
                f.write_str("empty application schema: no matrix values to operate on")
            }
            RmaError::ApplicationNotUnionCompatible => {
                f.write_str("application schemas are not union compatible")
            }
            RmaError::TupleCountMismatch { left, right } => {
                write!(f, "tuple count mismatch: {left} vs {right}")
            }
            RmaError::OverlappingOrderSchemas(name) => {
                write!(f, "order schemas overlap on attribute `{name}`")
            }
            RmaError::UnnamedRelation { op } => write!(
                f,
                "{op} requires a named relation (the name is the row origin)"
            ),
            RmaError::BadOriginName(n) => {
                write!(f, "origin value `{n}` cannot be used as an attribute name")
            }
            RmaError::Relation(e) => write!(f, "{e}"),
            RmaError::Linalg(e) => write!(f, "{e}"),
            RmaError::Storage(e) => write!(f, "{e}"),
            RmaError::Cancelled => f.write_str("query cancelled"),
            RmaError::DeadlineExceeded => f.write_str("query deadline exceeded"),
            RmaError::ResourceExhausted { needed, budget } => write!(
                f,
                "memory budget exhausted: needed {needed} bytes, budget {budget}"
            ),
            RmaError::WorkerPanicked { message } => {
                write!(f, "worker panicked during query execution: {message}")
            }
            RmaError::WriteContention { retries } => write!(
                f,
                "write contention: gave up after {retries} optimistic commit attempts"
            ),
            RmaError::SpillIo(msg) => write!(f, "spill I/O error: {msg}"),
        }
    }
}

impl std::error::Error for RmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmaError::Relation(e) => Some(e),
            RmaError::Linalg(e) => Some(e),
            RmaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for RmaError {
    fn from(e: RelationError) -> Self {
        match e {
            RelationError::NotAKey(attrs) => RmaError::OrderSchemaNotKey(attrs),
            // governance trips keep their identity across layers so callers
            // match one typed place regardless of where the trip happened
            RelationError::Cancelled => RmaError::Cancelled,
            RelationError::DeadlineExceeded => RmaError::DeadlineExceeded,
            RelationError::ResourceExhausted { needed, budget } => {
                RmaError::ResourceExhausted { needed, budget }
            }
            RelationError::SpillIo(msg) => RmaError::SpillIo(msg),
            other => RmaError::Relation(other),
        }
    }
}

impl From<rma_relation::GuardError> for RmaError {
    fn from(e: rma_relation::GuardError) -> Self {
        use rma_relation::GuardError;
        match e {
            GuardError::Cancelled => RmaError::Cancelled,
            GuardError::DeadlineExceeded => RmaError::DeadlineExceeded,
            GuardError::ResourceExhausted { needed, budget } => {
                RmaError::ResourceExhausted { needed, budget }
            }
        }
    }
}

impl From<LinalgError> for RmaError {
    fn from(e: LinalgError) -> Self {
        RmaError::Linalg(e)
    }
}

impl From<StorageError> for RmaError {
    fn from(e: StorageError) -> Self {
        RmaError::Storage(e)
    }
}
