//! Execution options, kernel delegation policy, and instrumentation.
//!
//! The paper's query optimizer "decides about external library calls based
//! on the complexity of the operation, the amount of data to be copied, and
//! the relative performance" (§7.3). [`Backend::Auto`] encodes that policy;
//! [`ExecStats`] measures the data-transformation share reported in Fig. 14.

use crate::shape::RmaOp;
use rma_relation::{PoolStats, WorkerPool};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Which kernel family computes base results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The paper's policy: element-wise operations stay on BATs, complex
    /// operations are delegated to the dense (MKL-role) kernel unless the
    /// matrix would exceed the memory budget, in which case the no-copy BAT
    /// kernel is used where available.
    #[default]
    Auto,
    /// Force the no-copy column-at-a-time kernels (RMA+BAT). Operations
    /// without a BAT implementation (SVD/eigen) still fall back to dense.
    Bat,
    /// Force the dense contiguous kernels (RMA+MKL), copying in and out.
    Dense,
}

/// Sorting policy for order-schema handling (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortPolicy {
    /// Skip sorting for operations whose result does not depend on the row
    /// order, and use relative alignment for element-wise operations.
    #[default]
    Optimized,
    /// Always materialise the full sort of every argument (the unoptimised
    /// baseline of Fig. 13).
    Always,
}

/// Options controlling RMA execution.
#[derive(Debug, Clone)]
pub struct RmaOptions {
    /// Which kernel family computes base results ([`Backend::Auto`] is the
    /// paper's policy).
    pub backend: Backend,
    /// Order-schema sorting policy (§8.1).
    pub sort_policy: SortPolicy,
    /// Verify that order schemas form keys (the paper requires it; turning
    /// it off removes the O(n) hash check from micro-benchmarks).
    pub validate_keys: bool,
    /// Auto-policy memory budget for the dense copy, in bytes. When the
    /// estimated dense working set exceeds it, the BAT kernel is used
    /// (mirroring the paper's switch to BATs when MKL would not fit).
    pub dense_memory_budget: usize,
    /// Worker threads for *plan execution*. Sizes the context's session
    /// [`WorkerPool`] (created at context construction; contexts at the
    /// default count share one process-wide pool). With `threads > 1` the
    /// plan interpreter routes operators with a parallel implementation
    /// (partitioned scan pipelines, hash joins, aggregation, sort/top-k)
    /// through the morsel-driven engine on that pool; `1` forces the serial
    /// plan interpreter. The dense kernels in `rma-linalg` run on the same
    /// substrate: constructing any context installs the process-wide
    /// default-sized pool as their executor
    /// ([`rma_linalg::install_parallelism`]), still budgeted by the shared
    /// `RMA_THREADS` knob ([`rma_linalg::available_threads`]). Defaults to
    /// [`default_threads`].
    pub threads: usize,
    /// Enable the cost-based join-order enumerator
    /// (`rma_core::plan::optimize`). Off, inner-join trees execute in the
    /// order the frontend wrote them — the ablation baseline of the
    /// `joinorder` bench target.
    pub join_reorder: bool,
    /// Per-query memory budget in bytes for the resource governor
    /// (`0` = unlimited, the default). When set, plan execution mints a
    /// `QueryGuard` and charges allocation-weight estimates at every
    /// materialization point (hash-join builds, sort permutations,
    /// aggregate states, the final `materialize()`); a breach aborts the
    /// query with `RmaError::ResourceExhausted` within one morsel's work.
    /// Distinct from [`RmaOptions::dense_memory_budget`], which only
    /// steers the BAT-vs-dense kernel choice and never fails a query.
    pub mem_budget: usize,
    /// Per-query deadline for the resource governor (`None` = no
    /// deadline). Measured from the start of each plan execution; a query
    /// that outlives it aborts with `RmaError::DeadlineExceeded` within
    /// one morsel's work. Serving deployments usually set this per
    /// session (`serve::Session::set_deadline`) instead.
    pub deadline: Option<Duration>,
}

impl Default for RmaOptions {
    fn default() -> Self {
        RmaOptions {
            backend: Backend::Auto,
            sort_policy: SortPolicy::Optimized,
            validate_keys: true,
            dense_memory_budget: 8 << 30, // 8 GiB
            threads: default_threads(),
            join_reorder: true,
            mem_budget: 0,
            deadline: None,
        }
    }
}

/// The default worker-thread count for plan execution: exactly the dense
/// kernels' process-wide budget ([`rma_linalg::available_threads`] —
/// `RMA_THREADS` env override, else hardware parallelism, capped), so one
/// knob and one parsing rule configure both layers.
pub fn default_threads() -> usize {
    rma_linalg::available_threads()
}

/// Which kernel actually ran (recorded per operation for tests/benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelUsed {
    /// The no-copy column-at-a-time kernel.
    Bat,
    /// The dense contiguous kernel.
    Dense,
    /// A BAT-forced operation had no BAT implementation.
    DenseFallback,
}

/// Timing breakdown of the last operations run through a context.
///
/// `copy_in`/`copy_out` cover the BAT↔dense transformations only — the
/// quantity Fig. 14b reports as the transformation share; `compute` is the
/// kernel time; `sort` is order-schema handling (split/sort/morph).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Time spent copying BATs into dense matrices.
    pub copy_in: Duration,
    /// Time spent copying dense results back into BATs.
    pub copy_out: Duration,
    /// Kernel compute time.
    pub compute: Duration,
    /// Order-schema handling time (split/sort/morph).
    pub sort: Duration,
    /// Number of relational matrix operations executed.
    pub ops_run: u32,
    /// Number of argument sort computations performed (full sorts and
    /// relative alignments). The lazy plan optimizer's redundant-sort
    /// elimination is observable here: consecutive operations over the same
    /// order schema sort once, not once per operation.
    pub sorts: u32,
    /// The kernel family of the most recent operation, if any ran.
    pub last_kernel: Option<KernelUsed>,
    /// Bytes the out-of-core operators wrote to spill files (disk
    /// footprint, never charged against the memory budget).
    pub spill_bytes: u64,
    /// Spill partitions/runs the out-of-core operators created.
    pub spill_partitions: u64,
    /// Forced `decode()` sink events: encoded columns a kernel could not
    /// process in encoded form and had to materialize to plain storage.
    pub decode_sinks: u64,
}

impl ExecStats {
    /// Fraction of (copy + compute) time spent copying — the Fig. 14 metric.
    pub fn transform_share(&self) -> f64 {
        let copy = self.copy_in + self.copy_out;
        let total = copy + self.compute;
        if total.is_zero() {
            return 0.0;
        }
        copy.as_secs_f64() / total.as_secs_f64()
    }
}

/// Lock-free statistics cell: every counter is an atomic so parallel
/// workers record sorts/copies concurrently without a shared lock (and
/// [`RmaContext`] is `Sync`, so one context can serve a whole worker pool).
/// Durations are stored as nanoseconds.
#[derive(Debug, Default)]
struct AtomicStats {
    copy_in_ns: AtomicU64,
    copy_out_ns: AtomicU64,
    compute_ns: AtomicU64,
    sort_ns: AtomicU64,
    ops_run: AtomicU32,
    sorts: AtomicU32,
    /// 0 = none, 1 = Bat, 2 = Dense, 3 = DenseFallback.
    last_kernel: AtomicU8,
    spill_bytes: AtomicU64,
    spill_partitions: AtomicU64,
    decode_sinks: AtomicU64,
}

impl AtomicStats {
    fn accumulate(&self, s: &ExecStats) {
        let add_ns = |cell: &AtomicU64, d: Duration| {
            cell.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        };
        add_ns(&self.copy_in_ns, s.copy_in);
        add_ns(&self.copy_out_ns, s.copy_out);
        add_ns(&self.compute_ns, s.compute);
        add_ns(&self.sort_ns, s.sort);
        self.ops_run.fetch_add(s.ops_run, Ordering::Relaxed);
        self.sorts.fetch_add(s.sorts, Ordering::Relaxed);
        self.spill_bytes.fetch_add(s.spill_bytes, Ordering::Relaxed);
        self.spill_partitions
            .fetch_add(s.spill_partitions, Ordering::Relaxed);
        self.decode_sinks
            .fetch_add(s.decode_sinks, Ordering::Relaxed);
        if let Some(k) = s.last_kernel {
            let code = match k {
                KernelUsed::Bat => 1,
                KernelUsed::Dense => 2,
                KernelUsed::DenseFallback => 3,
            };
            self.last_kernel.store(code, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> ExecStats {
        let ns = |cell: &AtomicU64| Duration::from_nanos(cell.load(Ordering::Relaxed));
        ExecStats {
            copy_in: ns(&self.copy_in_ns),
            copy_out: ns(&self.copy_out_ns),
            compute: ns(&self.compute_ns),
            sort: ns(&self.sort_ns),
            ops_run: self.ops_run.load(Ordering::Relaxed),
            sorts: self.sorts.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_partitions: self.spill_partitions.load(Ordering::Relaxed),
            decode_sinks: self.decode_sinks.load(Ordering::Relaxed),
            last_kernel: match self.last_kernel.load(Ordering::Relaxed) {
                1 => Some(KernelUsed::Bat),
                2 => Some(KernelUsed::Dense),
                3 => Some(KernelUsed::DenseFallback),
                _ => None,
            },
        }
    }

    fn reset(&self) {
        self.copy_in_ns.store(0, Ordering::Relaxed);
        self.copy_out_ns.store(0, Ordering::Relaxed);
        self.compute_ns.store(0, Ordering::Relaxed);
        self.sort_ns.store(0, Ordering::Relaxed);
        self.ops_run.store(0, Ordering::Relaxed);
        self.sorts.store(0, Ordering::Relaxed);
        self.last_kernel.store(0, Ordering::Relaxed);
        self.spill_bytes.store(0, Ordering::Relaxed);
        self.spill_partitions.store(0, Ordering::Relaxed);
        self.decode_sinks.store(0, Ordering::Relaxed);
    }
}

/// The process-wide worker pool shared by every context running at the
/// default thread count. Building it also installs it as the dense kernels'
/// executor, so relational operators and matrix kernels run on one thread
/// set. Never dropped: its workers are parked (not burning CPU) between
/// jobs for the life of the process.
fn global_pool() -> &'static Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool = Arc::new(WorkerPool::new(default_threads()));
        let _ = rma_linalg::install_parallelism(Arc::new(PoolParallelism(Arc::clone(&pool))));
        pool
    })
}

/// Adapter: the session worker pool as the dense kernels' executor.
struct PoolParallelism(Arc<WorkerPool>);

impl rma_linalg::Parallelism for PoolParallelism {
    fn threads(&self) -> usize {
        self.0.threads()
    }

    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        self.0.broadcast(f)
    }
}

/// The pool a context with `threads` workers executes on: the shared
/// process-wide pool at the default count, a private pool otherwise (an
/// explicit non-default `RmaOptions::threads` gets exactly what it asked
/// for without resizing anyone else's pool). The global pool — and with it
/// the dense kernels' pooled executor — is brought up either way, so the
/// "kernels ride the pool" guarantee holds for every context, not just
/// default-threaded ones.
fn pool_for(threads: usize) -> Arc<WorkerPool> {
    let global = global_pool();
    if threads.max(1) == default_threads() {
        Arc::clone(global)
    } else {
        Arc::new(WorkerPool::new(threads))
    }
}

/// An execution context: options plus accumulated statistics and the
/// session worker pool every parallel operator of this context runs on.
/// Create one per query (cheap — default-threaded contexts share one
/// process-wide pool) or keep one around per session. `Sync`: parallel
/// workers may share one context and record statistics concurrently.
#[derive(Debug)]
pub struct RmaContext {
    /// Execution options this context runs operations under. `threads` is
    /// read at construction to size the worker pool; mutate options through
    /// a new context, not in place.
    pub options: RmaOptions,
    stats: AtomicStats,
    pool: Arc<WorkerPool>,
}

impl Default for RmaContext {
    fn default() -> Self {
        RmaContext::new(RmaOptions::default())
    }
}

impl RmaContext {
    /// Context with the given options and zeroed statistics.
    pub fn new(options: RmaOptions) -> Self {
        let pool = pool_for(options.threads);
        RmaContext {
            options,
            stats: AtomicStats::default(),
            pool,
        }
    }

    /// The session worker pool this context's parallel operators run on.
    /// Fixed threads, parked between jobs — consecutive `execute` calls
    /// reuse them (see `rma_relation::par` for the job contract).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Snapshot the session pool's counters and gauges — total threads,
    /// process-wide threads spawned, jobs completed, current queue depth,
    /// cumulative queue-wait and busy time
    /// ([`rma_relation::PoolStats`]). The public observation point for
    /// pool behaviour (thread reuse, scheduler pressure, utilization);
    /// forked contexts share the pool and therefore the same stats.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// A context with different options *sharing this context's pool* —
    /// the plan interpreter's per-node backend overrides use this so an
    /// override never spawns a second worker set.
    pub(crate) fn with_options_shared_pool(&self, options: RmaOptions) -> RmaContext {
        RmaContext {
            options,
            stats: AtomicStats::default(),
            pool: Arc::clone(&self.pool),
        }
    }

    /// A context with the same options, **sharing this context's worker
    /// pool**, but with fresh zeroed statistics. This is how the serving
    /// layer gives each session (and, via another fork, each query) its own
    /// [`ExecStats`] attribution: concurrent queries record into their own
    /// forked context instead of polluting a context-global counter set,
    /// while still executing on the one shared pool.
    pub fn fork(&self) -> RmaContext {
        self.with_options_shared_pool(self.options.clone())
    }

    /// Context forcing a specific backend, other options default.
    pub fn with_backend(backend: Backend) -> Self {
        RmaContext::new(RmaOptions {
            backend,
            ..RmaOptions::default()
        })
    }

    /// Accumulated statistics since construction or the last reset.
    pub fn stats(&self) -> ExecStats {
        self.stats.snapshot()
    }

    /// Zero the accumulated statistics.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub(crate) fn record(&self, s: &ExecStats) {
        self.stats.accumulate(s);
    }

    /// Decide the kernel for an operation on an `m × n` application part
    /// (plus the second operand's application dimensions for binary ops)
    /// under the configured policy. Public so the plan-level optimizer can
    /// make the same choice ahead of execution.
    pub fn choose_kernel(
        &self,
        op: RmaOp,
        m: usize,
        n: usize,
        second: Option<(usize, usize)>,
    ) -> Backend {
        match self.options.backend {
            Backend::Bat => Backend::Bat,
            Backend::Dense => Backend::Dense,
            Backend::Auto => {
                if matches!(op, RmaOp::Add | RmaOp::Sub | RmaOp::Emu) {
                    // linear ops: transformation cost can never be amortised
                    Backend::Bat
                } else {
                    // complex op: use dense unless copying every operand in
                    // and the result out would not fit the budget
                    let mut cells = m * n;
                    if let Some((m2, n2)) = second {
                        cells += m2 * n2;
                    }
                    let est = 2 * cells * std::mem::size_of::<f64>();
                    if est <= self.options.dense_memory_budget {
                        Backend::Dense
                    } else {
                        Backend::Bat
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_matches_paper() {
        let ctx = RmaContext::default();
        assert_eq!(
            ctx.choose_kernel(RmaOp::Add, 1_000_000, 10, Some((1_000_000, 10))),
            Backend::Bat
        );
        assert_eq!(
            ctx.choose_kernel(RmaOp::Qqr, 1_000_000, 10, None),
            Backend::Dense
        );
        assert_eq!(
            ctx.choose_kernel(RmaOp::Inv, 100, 100, None),
            Backend::Dense
        );
    }

    #[test]
    fn auto_policy_respects_memory_budget() {
        let ctx = RmaContext::new(RmaOptions {
            dense_memory_budget: 1 << 20, // 1 MiB
            ..RmaOptions::default()
        });
        // 1M × 10 doubles ≈ 80 MB > 1 MiB → BAT
        assert_eq!(
            ctx.choose_kernel(RmaOp::Qqr, 1_000_000, 10, None),
            Backend::Bat
        );
        assert_eq!(ctx.choose_kernel(RmaOp::Qqr, 100, 10, None), Backend::Dense);
    }

    #[test]
    fn binary_budget_counts_both_operands() {
        // 60 KiB budget: one 32×100 operand copies in 2·32·100·8 ≈ 50 KiB,
        // but mmu's second operand of the same size pushes past the budget.
        let ctx = RmaContext::new(RmaOptions {
            dense_memory_budget: 60 << 10,
            ..RmaOptions::default()
        });
        assert_eq!(ctx.choose_kernel(RmaOp::Mmu, 32, 100, None), Backend::Dense);
        assert_eq!(
            ctx.choose_kernel(RmaOp::Mmu, 32, 100, Some((100, 32))),
            Backend::Bat
        );
    }

    #[test]
    fn forced_backends() {
        assert_eq!(
            RmaContext::with_backend(Backend::Bat).choose_kernel(RmaOp::Qqr, 10, 10, None),
            Backend::Bat
        );
        assert_eq!(
            RmaContext::with_backend(Backend::Dense).choose_kernel(
                RmaOp::Add,
                10,
                10,
                Some((10, 10))
            ),
            Backend::Dense
        );
    }

    #[test]
    fn stats_accumulate_and_share() {
        let ctx = RmaContext::default();
        let s = ExecStats {
            copy_in: Duration::from_millis(30),
            copy_out: Duration::from_millis(10),
            compute: Duration::from_millis(60),
            sort: Duration::from_millis(5),
            ops_run: 1,
            sorts: 1,
            last_kernel: Some(KernelUsed::Dense),
            ..ExecStats::default()
        };
        ctx.record(&s);
        ctx.record(&s);
        let acc = ctx.stats();
        assert_eq!(acc.ops_run, 2);
        assert_eq!(acc.sorts, 2);
        assert_eq!(acc.compute, Duration::from_millis(120));
        assert!((acc.transform_share() - 0.4).abs() < 1e-9);
        ctx.reset_stats();
        assert_eq!(ctx.stats().ops_run, 0);
        assert_eq!(ExecStats::default().transform_share(), 0.0);
    }

    #[test]
    fn stats_recording_is_thread_safe() {
        // RmaContext is Sync: workers record without a lock and no update
        // is lost
        let ctx = RmaContext::default();
        let s = ExecStats {
            compute: Duration::from_micros(10),
            ops_run: 1,
            sorts: 2,
            last_kernel: Some(KernelUsed::Bat),
            ..ExecStats::default()
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        ctx.record(&s);
                    }
                });
            }
        });
        let acc = ctx.stats();
        assert_eq!(acc.ops_run, 800);
        assert_eq!(acc.sorts, 1600);
        assert_eq!(acc.compute, Duration::from_millis(8));
        assert_eq!(acc.last_kernel, Some(KernelUsed::Bat));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
        assert!(RmaOptions::default().threads >= 1);
    }
}
