//! The 19 relational matrix operations (the paper's Table 2).
//!
//! Every operation follows the split → sort → morph → eval → merge pipeline
//! of Algorithm 1: the argument relation(s) are split into order and
//! application parts, the base result is computed by a kernel, and the
//! result relation is assembled from morphed contextual information plus the
//! base result — yielding a relation with row and column origins
//! (Theorem 6.8).

use crate::context::RmaContext;
use crate::error::RmaError;
use crate::kernels::{eval_binary, eval_unary, KernelOut};
use crate::shape::RmaOp;
use crate::split::{
    alignment_ranks, build_relation, column_cast, schema_cast, split, unary_sort_mode, SortMode,
    Split,
};
use rma_relation::{Attribute, Relation, Schema};
use rma_storage::{Column, ColumnData, DataType};
use std::time::Instant;

impl RmaContext {
    /// Dispatch a unary relational matrix operation `op_U(r)`.
    pub fn unary(&self, op: RmaOp, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary_hinted(op, r, order, false)
    }

    /// Unary dispatch with a sortedness hint from the plan layer:
    /// `input_sorted` asserts that `r` is already physically ordered by
    /// `order`, so the sort can be skipped even when the operation's result
    /// depends on row order.
    pub(crate) fn unary_hinted(
        &self,
        op: RmaOp,
        r: &Relation,
        order: &[&str],
        input_sorted: bool,
    ) -> Result<Relation, RmaError> {
        assert!(!op.is_binary(), "unary() called with binary op {op:?}");
        // tra and usv use the column cast ▽U: |U| must be 1
        if matches!(op, RmaOp::Tra | RmaOp::Usv) && order.len() != 1 {
            return Err(RmaError::OrderSchemaCardinality {
                op: op.name(),
                found: order.len(),
            });
        }
        let mut stats = crate::context::ExecStats::default();
        let t_sort = Instant::now();
        let mode = if input_sorted {
            SortMode::Skip
        } else {
            unary_sort_mode(self, op)
        };
        if matches!(mode, SortMode::Full) {
            stats.sorts += 1;
        }
        let s = split(self, r, order, mode)?;
        stats.sort += t_sort.elapsed();
        let out = eval_unary(self, op, &s.app, &mut stats)?;

        let t_merge = Instant::now();
        let result = match op {
            // (r1,c1): γ(µU(r) ‖ OP(µ_U̅(r)), U ◦ U̅)
            RmaOp::Inv | RmaOp::Evc | RmaOp::Chf | RmaOp::Qqr => {
                build_relation(order_context(&s), &s.app_names.clone(), out.into_cols())?
            }
            // (r1,r1): γ(µU(r) ‖ OP(µ_U̅(r)), U ◦ ▽U)
            RmaOp::Usv => {
                let names = column_cast(&s.order_cols[0])?;
                build_relation(order_context(&s), &names, out.into_cols())?
            }
            // (r1,1): γ(µU(r) ‖ OP(µ_U̅(r)), U ◦ (op))
            RmaOp::Evl | RmaOp::Vsv => {
                build_relation(order_context(&s), &[op.name().to_string()], out.into_cols())?
            }
            // (c1,r1): γ(∆U̅ ‖ OP(µ_U̅(r)), (C) ◦ ▽U)
            RmaOp::Tra => {
                let names = column_cast(&s.order_cols[0])?;
                build_relation(c_context(&s), &names, out.into_cols())?
            }
            // (c1,c1): γ(∆U̅ ‖ OP(µ_U̅(r)), (C) ◦ U̅)
            RmaOp::Rqr | RmaOp::Dsv => {
                build_relation(c_context(&s), &s.app_names.clone(), out.into_cols())?
            }
            // (1,1): γ(r ◦ OP(µ_U̅(r)), (C, op))
            RmaOp::Det | RmaOp::Rnk => scalar_relation(op, r, out)?,
            other => unreachable!("binary op {other:?} in unary dispatch"),
        };
        stats.sort += t_merge.elapsed();
        self.record(&stats);
        Ok(result)
    }

    /// Dispatch a binary relational matrix operation `op_{U;V}(r, s)`.
    pub fn binary(
        &self,
        op: RmaOp,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary_hinted(op, r, r_order, false, s, s_order, false)
    }

    /// Binary dispatch with per-argument sortedness hints from the plan
    /// layer (each flag asserts that the argument is already physically
    /// ordered by its order schema).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn binary_hinted(
        &self,
        op: RmaOp,
        r: &Relation,
        r_order: &[&str],
        r_sorted: bool,
        s: &Relation,
        s_order: &[&str],
        s_sorted: bool,
    ) -> Result<Relation, RmaError> {
        assert!(op.is_binary(), "binary() called with unary op {op:?}");
        if op == RmaOp::Opd && s_order.len() != 1 {
            return Err(RmaError::OrderSchemaCardinality {
                op: op.name(),
                found: s_order.len(),
            });
        }
        let mut stats = crate::context::ExecStats::default();
        let t_sort = Instant::now();
        let aligned = matches!(
            op,
            RmaOp::Add | RmaOp::Sub | RmaOp::Emu | RmaOp::Cpd | RmaOp::Sol
        );
        let optimized = self.options.sort_policy == crate::context::SortPolicy::Optimized;
        let (rs, ss) = if aligned {
            // element-wise / row-aligned: both relations must have equally
            // many tuples, paired by rank under their own order schemas
            if r.len() != s.len() {
                return Err(RmaError::TupleCountMismatch {
                    left: r.len(),
                    right: s.len(),
                });
            }
            if optimized && r_sorted && s_sorted {
                // both physically sorted: ranks align positionally for free
                let rs = split(self, r, r_order, SortMode::Skip)?;
                let ss = split(self, s, s_order, SortMode::Skip)?;
                (rs, ss)
            } else if optimized {
                // relative sorting: r stays physical, s is aligned to it
                let ranks = if r_sorted {
                    (0..r.len()).collect()
                } else {
                    stats.sorts += 1;
                    alignment_ranks(r, r_order)?
                };
                let rs = split(self, r, r_order, SortMode::Skip)?;
                stats.sorts += 1;
                let ss = split(self, s, s_order, SortMode::AlignTo { ranks })?;
                (rs, ss)
            } else {
                stats.sorts += 2;
                let rs = split(self, r, r_order, SortMode::Full)?;
                let ss = split(self, s, s_order, SortMode::Full)?;
                (rs, ss)
            }
        } else {
            // mmu/opd: r's rows are free (result rows permute with them),
            // s must be in key order (it aligns with r's application
            // columns / provides the sorted ▽V names)
            let r_mode = if r_sorted || (optimized && !op.result_depends_on_row_order()) {
                SortMode::Skip
            } else {
                SortMode::Full
            };
            let s_mode = if s_sorted {
                SortMode::Skip
            } else {
                SortMode::Full
            };
            if matches!(r_mode, SortMode::Full) {
                stats.sorts += 1;
            }
            if matches!(s_mode, SortMode::Full) {
                stats.sorts += 1;
            }
            let rs = split(self, r, r_order, r_mode)?;
            let ss = split(self, s, s_order, s_mode)?;
            (rs, ss)
        };
        stats.sort += t_sort.elapsed();

        // element-wise ops need union-compatible application schemas
        if matches!(op, RmaOp::Add | RmaOp::Sub | RmaOp::Emu) && rs.app.len() != ss.app.len() {
            return Err(RmaError::ApplicationNotUnionCompatible);
        }

        let out = eval_binary(self, op, &rs.app, &ss.app, &mut stats)?;

        let result = match op {
            // (r∗,c∗): γ(µU(r) ‖ µV(s) ‖ OP, U ◦ V ◦ U̅)
            RmaOp::Add | RmaOp::Sub | RmaOp::Emu => {
                let mut ctx_cols = order_context(&rs);
                for (a, c) in order_context(&ss) {
                    if ctx_cols.iter().any(|(e, _)| e.name() == a.name()) {
                        return Err(RmaError::OverlappingOrderSchemas(a.name().to_string()));
                    }
                    ctx_cols.push((a, c));
                }
                build_relation(ctx_cols, &rs.app_names.clone(), out.into_cols())?
            }
            // (r1,c2): γ(µU(r) ‖ OP, U ◦ V̅)
            RmaOp::Mmu => {
                build_relation(order_context(&rs), &ss.app_names.clone(), out.into_cols())?
            }
            // (r1,r2): γ(µU(r) ‖ OP, U ◦ ▽V)
            RmaOp::Opd => {
                let names = column_cast(&ss.order_cols[0])?;
                build_relation(order_context(&rs), &names, out.into_cols())?
            }
            // (c1,c2): γ(∆U̅ ‖ OP, (C) ◦ V̅)
            RmaOp::Cpd | RmaOp::Sol => {
                build_relation(c_context(&rs), &ss.app_names.clone(), out.into_cols())?
            }
            other => unreachable!("unary op {other:?} in binary dispatch"),
        };
        self.record(&stats);
        Ok(result)
    }

    // ------------------------------------------------------------------
    // Named operations
    // ------------------------------------------------------------------

    /// Matrix inversion `inv_U(r)`.
    pub fn inv(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Inv, r, order)
    }
    /// Eigenvectors `evc_U(r)`.
    pub fn evc(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Evc, r, order)
    }
    /// Eigenvalues `evl_U(r)`.
    pub fn evl(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Evl, r, order)
    }
    /// Cholesky factor `chf_U(r)`.
    pub fn chf(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Chf, r, order)
    }
    /// Q of the QR decomposition `qqr_U(r)`.
    pub fn qqr(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Qqr, r, order)
    }
    /// R of the QR decomposition `rqr_U(r)`.
    pub fn rqr(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Rqr, r, order)
    }
    /// Transpose `tra_U(r)`.
    pub fn tra(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Tra, r, order)
    }
    /// Left singular vectors (full U) `usv_U(r)`.
    pub fn usv(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Usv, r, order)
    }
    /// Singular values as a diagonal matrix `dsv_U(r)`.
    pub fn dsv(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Dsv, r, order)
    }
    /// Singular values as a column `vsv_U(r)`.
    pub fn vsv(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Vsv, r, order)
    }
    /// Determinant `det_U(r)`.
    pub fn det(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Det, r, order)
    }
    /// Rank `rnk_U(r)`.
    pub fn rnk(&self, r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
        self.unary(RmaOp::Rnk, r, order)
    }
    /// Matrix addition `add_{U;V}(r, s)`.
    pub fn add(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Add, r, r_order, s, s_order)
    }
    /// Matrix subtraction `sub_{U;V}(r, s)`.
    pub fn sub(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Sub, r, r_order, s, s_order)
    }
    /// Element-wise multiplication `emu_{U;V}(r, s)`.
    pub fn emu(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Emu, r, r_order, s, s_order)
    }
    /// Matrix multiplication `mmu_{U;V}(r, s)`.
    pub fn mmu(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Mmu, r, r_order, s, s_order)
    }
    /// Cross product `cpd_{U;V}(r, s)` (`AᵀB`).
    pub fn cpd(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Cpd, r, r_order, s, s_order)
    }
    /// Outer product `opd_{U;V}(r, s)` (`ABᵀ`).
    pub fn opd(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Opd, r, r_order, s, s_order)
    }
    /// Solve `sol_{U;V}(r, s)`: `A·x = b` (least squares when
    /// overdetermined).
    pub fn sol(
        &self,
        r: &Relation,
        r_order: &[&str],
        s: &Relation,
        s_order: &[&str],
    ) -> Result<Relation, RmaError> {
        self.binary(RmaOp::Sol, r, r_order, s, s_order)
    }
}

/// Row context of shape `r1`: the (ordered) order part with its attributes.
fn order_context(s: &Split) -> Vec<(Attribute, Column)> {
    s.order_attrs
        .iter()
        .cloned()
        .zip(s.order_cols.iter().cloned())
        .collect()
}

/// Row context of shape `c1`: a new attribute `C` holding the application
/// schema names (the schema cast ∆U̅).
fn c_context(s: &Split) -> Vec<(Attribute, Column)> {
    vec![(
        Attribute::new("C", DataType::Str),
        schema_cast(&s.app_names),
    )]
}

/// Shape (1,1) result: one row with the relation name in `C` and the scalar
/// in a column named after the operation; `rnk` is integer-typed.
fn scalar_relation(op: RmaOp, r: &Relation, out: KernelOut) -> Result<Relation, RmaError> {
    let KernelOut::Scalar(v) = out else {
        unreachable!("shape (1,1) op produced a matrix");
    };
    let name = r.name().unwrap_or("r").to_string();
    let c_col = Column::new(ColumnData::Str(vec![name]));
    let (val_attr, val_col) = if op == RmaOp::Rnk {
        (
            Attribute::new(op.name(), DataType::Int),
            Column::new(ColumnData::Int(vec![v as i64])),
        )
    } else {
        (
            Attribute::new(op.name(), DataType::Float),
            Column::new(ColumnData::Float(vec![v])),
        )
    };
    let schema = Schema::new(vec![Attribute::new("C", DataType::Str), val_attr])?;
    Ok(Relation::new(schema, vec![c_col, val_col])?)
}

/// Free-function API with a default context, for one-off calls.
macro_rules! free_unary {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(r: &Relation, order: &[&str]) -> Result<Relation, RmaError> {
                RmaContext::default().$name(r, order)
            }
        )+
    };
}

macro_rules! free_binary {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(
                r: &Relation,
                r_order: &[&str],
                s: &Relation,
                s_order: &[&str],
            ) -> Result<Relation, RmaError> {
                RmaContext::default().$name(r, r_order, s, s_order)
            }
        )+
    };
}

free_unary!(
    /// Matrix inversion with default options.
    inv,
    /// Eigenvectors with default options.
    evc,
    /// Eigenvalues with default options.
    evl,
    /// Cholesky factor with default options.
    chf,
    /// QR: Q factor with default options.
    qqr,
    /// QR: R factor with default options.
    rqr,
    /// Transpose with default options.
    tra,
    /// Full left singular vectors with default options.
    usv,
    /// Diagonal singular-value matrix with default options.
    dsv,
    /// Singular-value column with default options.
    vsv,
    /// Determinant with default options.
    det,
    /// Rank with default options.
    rnk,
);

free_binary!(
    /// Matrix addition with default options.
    add,
    /// Matrix subtraction with default options.
    sub,
    /// Element-wise multiplication with default options.
    emu,
    /// Matrix multiplication with default options.
    mmu,
    /// Cross product with default options.
    cpd,
    /// Outer product with default options.
    opd,
    /// Linear solve with default options.
    sol,
);
