//! # rma-core — the relational matrix algebra
//!
//! The paper's primary contribution: linear-algebra operations defined
//! *over relations*, closed under the relational model. Each operation
//! takes relation(s) plus an order schema per argument, computes the matrix
//! base result with either the dense (MKL-role) or the column-at-a-time
//! (BAT-role) kernel, and morphs the contextual information of the inputs
//! into row and column origins of the output (Tables 2 and 3 of the paper).
//!
//! ```
//! use rma_core::RmaContext;
//! use rma_relation::RelationBuilder;
//!
//! // the rating relation of the paper's introduction
//! let rating = RelationBuilder::new()
//!     .column("User", vec!["Ann", "Tom", "Jan"])
//!     .column("Balto", vec![2.0f64, 0.0, 1.0])
//!     .column("Heat", vec![1.5f64, 0.0, 4.0])
//!     .column("Net", vec![0.5f64, 1.5, 1.0])
//!     .build()
//!     .unwrap();
//!
//! // SELECT * FROM INV(rating BY User);
//! let ctx = RmaContext::default();
//! let inverted = ctx.inv(&rating, &["User"]).unwrap();
//! assert_eq!(inverted.schema(), rating.schema());
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod kernels;
pub mod ops;
pub mod plan;
pub mod serve;
pub mod shape;
pub mod split;
pub mod trace;

pub use context::{
    default_threads, Backend, ExecStats, KernelUsed, RmaContext, RmaOptions, SortPolicy,
};
pub use error::RmaError;
pub use plan::{Frame, LogicalPlan, PartitionedTableProvider, PlanError, TableProvider};
pub use rma_relation::{GuardError, PoolStats, QueryGuard};
pub use serve::{
    CatalogSnapshot, MetricsRegistry, MetricsSnapshot, ServeError, Server, Session,
    SessionCounters, VersionedCatalog,
};
pub use shape::{Dim, RmaOp, ShapeType, ALL_OPS};
pub use trace::{chrome_trace_json, Span, TraceSession};

// Free-function API re-exports.
pub use ops::{
    add, chf, cpd, det, dsv, emu, evc, evl, inv, mmu, opd, qqr, rnk, rqr, sol, sub, tra, usv, vsv,
};
