//! A scripted SQL session demonstrating the extended dialect: RMA table
//! expressions, nesting, joins, aggregates, and EXPLAIN with predicate
//! pushdown.
//!
//! Run with: `cargo run --example sql_session`

use rma::sql::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut e = Engine::new();

    e.execute_script(
        "CREATE TABLE r (T VARCHAR, H DOUBLE, W DOUBLE);
         INSERT INTO r VALUES ('5am', 1.0, 3.0), ('8am', 8.0, 5.0),
                              ('7am', 6.0, 7.0), ('6am', 1.0, 4.0);",
    )?;

    for query in [
        // Figure 3: inversion of a selected sub-relation
        "SELECT * FROM INV((SELECT * FROM r WHERE T > '6am') q BY T)",
        // Figure 4: QR decomposition and transpose
        "SELECT * FROM QQR(r BY T)",
        "SELECT * FROM TRA(r BY T)",
        // Figure 10: nested transposes round-trip
        "SELECT * FROM TRA(TRA(r BY T) BY C) WHERE C >= '7am'",
        // singular values, determinant needs a square application part
        "SELECT * FROM VSV(r BY T)",
        "SELECT * FROM DET((SELECT * FROM r WHERE T > '6am') q BY T)",
        // plain SQL still works, including aggregates and ordering
        "SELECT COUNT(*) AS n, AVG(H) AS avg_h FROM r WHERE W > 3",
        "SELECT T, H + W AS s FROM r ORDER BY s DESC LIMIT 2",
    ] {
        println!("> {query}");
        println!("{}", e.query(query)?);
    }

    // EXPLAIN shows the optimizer pushing filters below joins; it is a
    // statement of the dialect, so it composes with the scripted session
    e.execute("CREATE TABLE meta (T2 VARCHAR, label VARCHAR)")?;
    e.execute("INSERT INTO meta VALUES ('7am', 'rush'), ('8am', 'rush')")?;
    let plan =
        e.query("EXPLAIN SELECT * FROM r JOIN meta ON T = T2 WHERE label = 'rush' AND H > 2")?;
    println!("EXPLAIN with pushdown:\n{plan}");

    // ... and exposes the cross-operator rewrite: consecutive matrix
    // operations over the same order schema sort once
    let plan = e.query("EXPLAIN SELECT * FROM INV(INV(r BY T) BY T)")?;
    println!("EXPLAIN with shared sort:\n{plan}");
    Ok(())
}
