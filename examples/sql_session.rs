//! Multi-session SQL serving: several engines attached to one server,
//! writing and reading concurrently with snapshot isolation.
//!
//! One appender streams batches into `rating` while three reader
//! sessions aggregate it — every reader observes some committed
//! generation (`SUM(w) == COUNT(*)` over an all-ones column is the
//! checksum), never a torn state. DDL goes through the same versioned
//! catalog: `CREATE TABLE AS SELECT`, `CREATE OR REPLACE`, and `DROP`
//! are generation bumps, so a reader pinned before a drop keeps its
//! data.
//!
//! Run with: `cargo run --example sql_session`

use rma::sql::Engine;
use rma::{Server, Value};
use std::sync::atomic::{AtomicBool, Ordering};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::default();
    let mut admin = Engine::session(&server);
    admin.execute_script(
        "CREATE TABLE rating (T VARCHAR, H DOUBLE, w INT);
         INSERT INTO rating VALUES ('5am', 1.0, 1), ('8am', 8.0, 1),
                                   ('7am', 6.0, 1), ('6am', 1.0, 1);",
    )?;

    // --- one appender + three readers, each its own session ------------
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = {
            let server = &server;
            scope.spawn(move || {
                let mut e = Engine::session(server);
                for i in 0..200 {
                    e.execute(&format!("INSERT INTO rating VALUES ('t{i}', {i}.0, 1)"))
                        .expect("insert");
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let server = &server;
                let done = &done;
                scope.spawn(move || {
                    let mut e = Engine::session(server);
                    let (mut reads, mut last) = (0u32, 0i64);
                    while !done.load(Ordering::Relaxed) {
                        let row = e
                            .query("SELECT COUNT(*) AS n, SUM(w) AS s FROM rating")
                            .expect("aggregate");
                        let (n, s) = (row.cell(0, "n").unwrap(), row.cell(0, "s").unwrap());
                        // the snapshot-consistency checksum: an all-ones
                        // column sums to the row count in every committed
                        // generation — a torn read would break it
                        assert_eq!(n, s, "reader saw an uncommitted state");
                        if let Value::Int(v) = n {
                            assert!(v >= last, "snapshots went backwards");
                            last = v;
                        }
                        reads += 1;
                    }
                    (r, reads, last)
                })
            })
            .collect();
        writer.join().expect("writer");
        done.store(true, Ordering::Relaxed);
        for h in readers {
            let (r, reads, last) = h.join().expect("reader");
            println!("reader {r}: {reads} consistent reads, final count {last}");
        }
    });
    let total = admin.query("SELECT COUNT(*) AS n FROM rating")?;
    println!("committed rows: {}", total.cell(0, "n").unwrap());

    // --- DDL across sessions is just more generations ------------------
    let mut analyst = Engine::session(&server);
    analyst.execute("CREATE TABLE hot AS SELECT T, H FROM rating WHERE H > 5.0")?;
    // visible to the admin session at its next statement boundary
    let n = admin.query("SELECT COUNT(*) AS n FROM hot")?;
    println!("hot rows (admin's view): {}", n.cell(0, "n").unwrap());
    analyst.execute("CREATE OR REPLACE TABLE hot AS SELECT T, H FROM rating WHERE H > 100.0")?;
    let n = admin.query("SELECT COUNT(*) AS n FROM hot")?;
    println!("hot rows after replace: {}", n.cell(0, "n").unwrap());
    analyst.execute("DROP TABLE IF EXISTS hot")?;
    assert!(admin.query("SELECT * FROM hot").is_err());

    // --- a pin outlives a drop: readers keep their generation ----------
    let session = server.session();
    let pin = session.pin();
    session.drop_table("rating")?;
    let held = session.query_at(&pin, rma::Frame::table("rating"))?;
    println!(
        "dropped `rating`; pinned reader still sees {} rows",
        held.len()
    );

    // the RMA dialect works unchanged through a session engine
    let mut rma_user = Engine::session(&server);
    rma_user.execute_script(
        "CREATE TABLE r (T VARCHAR, H DOUBLE, W DOUBLE);
         INSERT INTO r VALUES ('5am', 1.0, 3.0), ('6am', 1.0, 4.0);",
    )?;
    println!("{}", rma_user.query("SELECT * FROM INV(r BY T)")?);
    Ok(())
}
