//! Inspecting plans: EXPLAIN with per-node cardinality and cost
//! estimates, and the cost-based join order they drive.
//!
//! ```text
//! cargo run --release -p rma --example explain_demo
//! ```
//!
//! Builds a small star schema whose written join order is deliberately
//! bad (the large dimension first, the selective one last), then prints
//! the optimized plan. The `rows≈`/`cost≈` annotations show why the
//! optimizer flips the order: joining the filtered dimension first
//! collapses the intermediate result.

use rma::sql::Engine;

fn main() {
    let mut e = Engine::new();
    e.execute("CREATE TABLE fact (fk INT, gk INT, v DOUBLE)")
        .unwrap();
    let rows: Vec<String> = (0..2000)
        .map(|i| format!("({}, {}, {}.5)", i % 50, i % 20, i % 7))
        .collect();
    e.execute(&format!("INSERT INTO fact VALUES {}", rows.join(",")))
        .unwrap();
    e.execute("CREATE TABLE big (gk2 INT, w DOUBLE)").unwrap();
    let rows: Vec<String> = (0..500).map(|i| format!("({}, 1.0)", i % 20)).collect();
    e.execute(&format!("INSERT INTO big VALUES {}", rows.join(",")))
        .unwrap();
    e.execute("CREATE TABLE dim (k INT, p INT)").unwrap();
    let rows: Vec<String> = (0..50).map(|i| format!("({i}, {i})")).collect();
    e.execute(&format!("INSERT INTO dim VALUES {}", rows.join(",")))
        .unwrap();

    // written order: fact ⋈ big first, the selective dim last
    let q = "SELECT * FROM fact JOIN big ON gk = gk2 JOIN dim ON fk = k WHERE p = 3";
    println!("EXPLAIN {q}\n");
    println!("{}", e.explain(q).unwrap());
    let r = e.query(q).unwrap();
    println!("result rows: {}", r.len());

    // EXPLAIN ANALYZE executes the query and appends measured actuals to
    // every node: output rows, inclusive wall time, morsel count, and the
    // estimator's q-error (max(est/actual, actual/est))
    println!("\nEXPLAIN ANALYZE {q}\n");
    println!("{}", e.explain_analyze(q).unwrap());
}
