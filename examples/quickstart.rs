//! Quickstart: the paper's introduction example.
//!
//! A `rating` relation stores users and their ratings for three films.
//! `SELECT * FROM INV(rating BY User)` orders the relation by users,
//! inverts the matrix formed by the numeric columns, and returns a relation
//! with the same schema — user names and film titles (the *origins*) are
//! preserved automatically.
//!
//! Run with: `cargo run --example quickstart`

use rma::core::RmaContext;
use rma::relation::RelationBuilder;
use rma::sql::Engine;
use rma::Frame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the SQL route -------------------------------------------------
    let mut engine = Engine::new();
    engine.execute("CREATE TABLE rating (User VARCHAR, Balto DOUBLE, Heat DOUBLE, Net DOUBLE)")?;
    engine.execute(
        "INSERT INTO rating VALUES
           ('Ann', 2.0, 1.5, 0.5),
           ('Tom', 0.0, 0.0, 1.5),
           ('Jan', 1.0, 4.0, 1.0)",
    )?;

    let inverted = engine.query("SELECT * FROM INV(rating BY User)")?;
    println!("SELECT * FROM INV(rating BY User):\n{inverted}");

    // --- the library route ---------------------------------------------
    let rating = RelationBuilder::new()
        .name("rating")
        .column("User", vec!["Ann", "Tom", "Jan"])
        .column("Balto", vec![2.0f64, 0.0, 1.0])
        .column("Heat", vec![1.5f64, 0.0, 4.0])
        .column("Net", vec![0.5f64, 1.5, 1.0])
        .build()?;

    let ctx = RmaContext::default();
    let inv = ctx.inv(&rating, &["User"])?;
    println!("library inv(rating BY User):\n{inv}");

    // RMA is closed: results are plain relations, so operations nest. A
    // double transpose returns the original values, with full context:
    let t1 = ctx.tra(&rating, &["User"])?;
    println!("tra(rating BY User):\n{t1}");
    let t2 = ctx.tra(&t1, &["C"])?;
    println!("tra(tra(rating BY User) BY C):\n{t2}");

    // ... and mixed queries compose freely with relational operators:
    let det = engine.query("SELECT * FROM DET(rating BY User)")?;
    println!("SELECT * FROM DET(rating BY User):\n{det}");

    // --- the lazy route --------------------------------------------------
    // A Frame records the pipeline as one logical plan; collect() optimizes
    // across operators (here: the second inversion reuses the first's sort)
    // and then executes.
    ctx.reset_stats();
    let frame = Frame::scan(rating).inv(&["User"]).inv(&["User"]);
    println!("optimized plan:\n{}", frame.explain(&ctx));
    let roundtrip = frame.collect(&ctx)?;
    println!("inv(inv(rating BY User) BY User):\n{roundtrip}");
    println!("sorts performed: {}", ctx.stats().sorts);
    Ok(())
}
