//! Film similarity via covariance — the paper's Section 5 walkthrough.
//!
//! Computes how similar each of Lee's films is to every other film based on
//! ratings from California users, mixing relational operators (σ, ϑ, ρ, ⋈,
//! ×, π) with relational matrix operations (sub, tra, mmu) exactly as in
//! Figure 6.
//!
//! Run with: `cargo run --example film_similarity`

use rma::core::RmaContext;
use rma::relation::{
    aggregate, cross_product, join_on, natural_join, project, project_exprs, rename, select,
    AggSpec, Expr, RelationBuilder,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the example database of Figure 5
    let users = RelationBuilder::new()
        .name("u")
        .column("User", vec!["Ann", "Tom", "Jan"])
        .column("State", vec!["CA", "FL", "CA"])
        .column("YoB", vec![1980i64, 1965, 1970])
        .build()?;
    let films = RelationBuilder::new()
        .name("f")
        .column("Title", vec!["Heat", "Balto", "Net"])
        .column("RelY", vec![1995i64, 1995, 1995])
        .column("Director", vec!["Lee", "Lee", "Smith"])
        .build()?;
    // film-title columns carry the context that later joins back to `films`
    let ratings = RelationBuilder::new()
        .name("r")
        .column("User", vec!["Ann", "Tom", "Jan"])
        .column("Balto", vec![2.0f64, 0.0, 1.0])
        .column("Heat", vec![1.5f64, 0.0, 4.0])
        .column("Net", vec![0.5f64, 1.5, 1.0])
        .build()?;

    let ctx = RmaContext::default();

    // w1 = π_{U,B,H,N}(σ_{S='CA'}(u ⋈ r))
    let w1 = project(
        &select(
            &natural_join(&users, &ratings)?,
            &Expr::col("State").eq(Expr::lit("CA")),
        )?,
        &["User", "Balto", "Heat", "Net"],
    )?;
    println!("w1 (CA ratings):\n{w1}");

    // w2 = ϑ_{AVG(B),AVG(H),AVG(N)}(w1)
    let w2 = aggregate(
        &w1,
        &[],
        &[
            AggSpec::avg("Balto", "Balto"),
            AggSpec::avg("Heat", "Heat"),
            AggSpec::avg("Net", "Net"),
        ],
    )?;

    // w3 = π_{U,B,H,N}(sub_{U;V}(w1, ρ_V(π_U(w1)) × w2))
    let user_list = rename(&project(&w1, &["User"])?, &[("User", "V")])?;
    let means = cross_product(&user_list, &w2)?;
    let w3 = project(
        &ctx.sub(&w1, &["User"], &means, &["V"])?,
        &["User", "Balto", "Heat", "Net"],
    )?;
    println!("w3 (centred ratings):\n{w3}");

    // w4 = tra_U(w3); w5 = mmu_{C;U}(w4, w3)
    let w4 = ctx.tra(&w3, &["User"])?;
    let w5 = ctx.mmu(&w4, &["C"], &w3, &["User"])?;

    // w6, w7: unbiased covariance — divide by (COUNT(*) − 1)
    let m = aggregate(&w1, &[], &[AggSpec::count_star("M")])?;
    let w6 = cross_product(&w5, &m)?;
    let w7 = project_exprs(
        &w6,
        &[
            (Expr::col("C"), "C"),
            (
                Expr::col("Balto").div(Expr::col("M").sub(Expr::lit(1i64))),
                "Balto",
            ),
            (
                Expr::col("Heat").div(Expr::col("M").sub(Expr::lit(1i64))),
                "Heat",
            ),
            (
                Expr::col("Net").div(Expr::col("M").sub(Expr::lit(1i64))),
                "Net",
            ),
        ],
    )?;
    println!("w7 (covariance matrix with origins):\n{w7}");

    // w8 = π_{T,B,H,N}(σ_{D='Lee'}(w7 ⋈_{C=T} f))
    let w8 = project(
        &select(
            &join_on(&w7, &films, &[("C", "Title")])?,
            &Expr::col("Director").eq(Expr::lit("Lee")),
        )?,
        &["Title", "Balto", "Heat", "Net"],
    )?;
    println!("w8 (similarity of Lee's films):\n{w8}");

    // Verification against Figure 5's data: centred Balto ratings for the
    // CA users are ±0.5, so cov(Balto, Balto) = 0.5. (The paper's Figure 7
    // prints 1.56 in the Balto row, which is cov(Heat, Heat) for its
    // Figure 5 instance — the w3/w8 tables there swap the B and H columns;
    // we verify the mathematically consistent values.)
    let balto_row = select(&w8, &Expr::col("Title").eq(Expr::lit("Balto")))?;
    let bb = balto_row.cell(0, "Balto")?.as_f64().unwrap();
    let bh = balto_row.cell(0, "Heat")?.as_f64().unwrap();
    assert!((bb - 0.5).abs() < 1e-9, "cov(Balto,Balto) = {bb}");
    assert!((bh - -1.25).abs() < 1e-9, "cov(Balto,Heat) = {bh}");
    let heat_row = select(&w8, &Expr::col("Title").eq(Expr::lit("Heat")))?;
    let hh = heat_row.cell(0, "Heat")?.as_f64().unwrap();
    assert!((hh - 3.125).abs() < 1e-9, "cov(Heat,Heat) = {hh}");
    println!("cov(Balto,Balto) = {bb}, cov(Balto,Heat) = {bh}, cov(Heat,Heat) = {hh}");
    Ok(())
}
