//! Trips regression — the paper's §8.6(1) workload on generated BIXI-like
//! data: prepare trips relationally, then fit duration against distance
//! with ordinary least squares expressed as RMA operations
//! (`MMU(INV(CPD(A,A)), CPD(A,V))`).
//!
//! Run with: `cargo run --release --example trips_regression`

use rma::core::RmaContext;
use rma::relation::{project, Relation};
use rma_bench::{run_trips_ols, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trips = rma::data::trips(50_000, 100, 42);
    let stations = rma::data::stations(100, 42 ^ 0x5a5a);
    println!(
        "generated {} trips over {} stations (duration ≈ 180·distance + 240)",
        trips.len(),
        stations.len()
    );

    // run the full workload on RMA+ and print the timing split
    for sys in [SystemKind::RmaAuto, SystemKind::RmaBat, SystemKind::RmaMkl] {
        let rep = run_trips_ols(sys, &trips, &stations, 20);
        println!(
            "{:>8}: prep {:>8.2?}  transform {:>8.2?}  matrix {:>8.2?}  slope {:.2}",
            sys.name(),
            rep.prep,
            rep.transform,
            rep.matrix,
            rep.check
        );
    }

    // the same regression by hand on a tiny design matrix, to show the API
    let ctx = RmaContext::default();
    let design: Relation = rma::relation::RelationBuilder::new()
        .column("t", vec![1i64, 2, 3, 4])
        .column("x0", vec![1.0f64, 1.0, 1.0, 1.0])
        .column("x1", vec![0.0f64, 1.0, 2.0, 3.0])
        .build()?;
    let y: Relation = rma::relation::RelationBuilder::new()
        .column("t2", vec![1i64, 2, 3, 4])
        .column("y", vec![1.1f64, 2.9, 5.1, 6.9])
        .build()?;
    let beta = ctx.sol(&design, &["t"], &y, &["t2"])?;
    println!("\nsol (least squares) result with origins:\n{beta}");
    let _ = project(&beta, &["C", "y"])?;
    Ok(())
}
