//! End-to-end serving-layer stress: several SQL session engines attached
//! to one [`Server`], one appender and three readers running concurrently.
//!
//! The consistency oracle: the single appender inserts `1..=ROWS` in
//! order, so the committed generations are exactly the prefixes of that
//! sequence and every reader aggregate must satisfy
//! `SUM(x) = n * (n + 1) / 2` for its observed `COUNT(*) = n`. A torn or
//! non-snapshot read breaks the identity.

use rma::sql::Engine;
use rma::{Server, Value};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const ROWS: i64 = 250;
const MIN_READER_QUERIES: usize = 350;

#[test]
fn four_sql_sessions_serve_consistent_snapshots() {
    let server = Server::default();
    let mut admin = Engine::session(&server);
    admin.execute("CREATE TABLE t (x INT)").unwrap();

    let done = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let writer = {
            let server = &server;
            scope.spawn(move || {
                let mut e = Engine::session(server);
                for i in 1..=ROWS {
                    e.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                }
            })
        };
        for _ in 0..3 {
            let server = &server;
            let done = &done;
            let queries = &queries;
            scope.spawn(move || {
                let mut e = Engine::session(server);
                let mut issued = 0usize;
                while !done.load(Ordering::Relaxed) || issued < MIN_READER_QUERIES {
                    let r = e.query("SELECT COUNT(*) AS n, SUM(x) AS s FROM t").unwrap();
                    let n = match r.cell(0, "n").unwrap() {
                        Value::Int(v) => v,
                        other => panic!("unexpected count {other:?}"),
                    };
                    let s = match r.cell(0, "s").unwrap() {
                        Value::Int(v) => v,
                        Value::Null => 0,
                        other => panic!("unexpected sum {other:?}"),
                    };
                    assert!((0..=ROWS).contains(&n), "impossible row count {n}");
                    assert_eq!(
                        s,
                        n * (n + 1) / 2,
                        "aggregate ({n}, {s}) matches no committed generation"
                    );
                    issued += 1;
                }
                queries.fetch_add(issued, Ordering::Relaxed);
            });
        }
        writer.join().unwrap();
        done.store(true, Ordering::Relaxed);
    });

    assert!(
        queries.load(Ordering::Relaxed) >= 3 * MIN_READER_QUERIES,
        "stress run issued fewer than {} reader queries",
        3 * MIN_READER_QUERIES
    );
    let r = admin.query("SELECT COUNT(*) AS n FROM t").unwrap();
    assert_eq!(r.cell(0, "n").unwrap(), Value::Int(ROWS));
}

#[test]
fn ddl_round_trips_across_sessions() {
    let server = Server::default();
    let mut a = Engine::session(&server);
    let mut b = Engine::session(&server);
    a.execute("CREATE TABLE src (x INT)").unwrap();
    a.execute("INSERT INTO src VALUES (1), (2), (3)").unwrap();

    // CTAS in one session is visible to the other at its next statement
    b.execute("CREATE TABLE derived AS SELECT x FROM src WHERE x > 1")
        .unwrap();
    let r = a.query("SELECT COUNT(*) AS n FROM derived").unwrap();
    assert_eq!(r.cell(0, "n").unwrap(), Value::Int(2));

    // OR REPLACE bumps the generation rather than mutating in place
    b.execute("CREATE OR REPLACE TABLE derived AS SELECT x FROM src")
        .unwrap();
    let r = a.query("SELECT COUNT(*) AS n FROM derived").unwrap();
    assert_eq!(r.cell(0, "n").unwrap(), Value::Int(3));

    a.execute("DROP TABLE IF EXISTS ghost").unwrap();
    a.execute("DROP TABLE derived").unwrap();
    assert!(b.query("SELECT * FROM derived").is_err());
}
