//! Cross-crate integration: storage → relation → linalg → core, exercising
//! complete RMA pipelines end to end.

use rma::core::{Backend, RmaContext, RmaOptions, SortPolicy};
use rma::relation::{project, select, Expr, RelationBuilder};
use rma::Value;

fn weather() -> rma::Relation {
    RelationBuilder::new()
        .name("r")
        .column("T", vec!["5am", "8am", "7am", "6am"])
        .column("H", vec![1.0f64, 8.0, 6.0, 1.0])
        .column("W", vec![3.0f64, 5.0, 7.0, 4.0])
        .build()
        .unwrap()
}

#[test]
fn every_unary_operation_end_to_end() {
    let ctx = RmaContext::default();
    let r = weather();
    let square = select(&r, &Expr::col("T").gt(Expr::lit("6am"))).unwrap();

    // rectangular ops
    for result in [
        ctx.qqr(&r, &["T"]).unwrap(),
        ctx.rqr(&r, &["T"]).unwrap(),
        ctx.tra(&r, &["T"]).unwrap(),
        ctx.usv(&r, &["T"]).unwrap(),
        ctx.dsv(&r, &["T"]).unwrap(),
        ctx.vsv(&r, &["T"]).unwrap(),
        ctx.rnk(&r, &["T"]).unwrap(),
    ] {
        assert!(!result.is_empty());
    }
    // square-only ops
    for result in [
        ctx.inv(&square, &["T"]).unwrap(),
        ctx.det(&square, &["T"]).unwrap(),
        ctx.evl(&square, &["T"]).unwrap(),
    ] {
        assert!(!result.is_empty());
    }
    // chf needs symmetric positive definite: build AᵀA via cpd
    let g = ctx.cpd(&r, &["T"], &r, &["T"]).unwrap();
    let chf = ctx.chf(&g, &["C"]).unwrap();
    assert_eq!(chf.len(), 2);
    // evc on the symmetric Gram matrix
    let evc = ctx.evc(&g, &["C"]).unwrap();
    assert_eq!(evc.len(), 2);
}

#[test]
fn every_binary_operation_end_to_end() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("k", vec![1i64, 2, 3])
        .column("p", vec![1.0f64, 2.0, 3.0])
        .column("q", vec![0.5f64, 1.0, -1.0])
        .build()
        .unwrap();
    let b = RelationBuilder::new()
        .column("j", vec![3i64, 1, 2])
        .column("u", vec![2.0f64, 4.0, 6.0])
        .column("v", vec![1.0f64, 3.0, 5.0])
        .build()
        .unwrap();
    assert_eq!(ctx.add(&a, &["k"], &b, &["j"]).unwrap().schema().len(), 4);
    assert_eq!(ctx.sub(&a, &["k"], &b, &["j"]).unwrap().len(), 3);
    assert_eq!(ctx.emu(&a, &["k"], &b, &["j"]).unwrap().len(), 3);
    assert_eq!(ctx.cpd(&a, &["k"], &b, &["j"]).unwrap().len(), 2);
    // mmu: a's 2 app columns require a 2-tuple second operand
    let c = RelationBuilder::new()
        .column("j", vec![1i64, 2])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    let m = ctx.mmu(&a, &["k"], &c, &["j"]).unwrap();
    assert_eq!(m.len(), 3);
    // opd with |V| = 1
    let o = ctx.opd(&a, &["k"], &b, &["j"]).unwrap();
    assert_eq!(o.schema().len(), 4); // k ◦ ▽j (3 columns)
                                     // sol: least squares
    let y = RelationBuilder::new()
        .column("t", vec![1i64, 2, 3])
        .column("y", vec![2.0f64, 5.0, 1.0])
        .build()
        .unwrap();
    let s = ctx.sol(&a, &["k"], &y, &["t"]).unwrap();
    assert_eq!(s.len(), 2);
}

#[test]
fn mixed_pipeline_matches_direct_computation() {
    // σ → inv → π → rnk: relational and matrix operators interleaved
    let ctx = RmaContext::default();
    let r = weather();
    let sub = select(&r, &Expr::col("H").gt(Expr::lit(0.5))).unwrap();
    let q = ctx.qqr(&sub, &["T"]).unwrap();
    let hw = project(&q, &["T", "H", "W"]).unwrap();
    let rank = ctx.rnk(&hw, &["T"]).unwrap();
    assert_eq!(rank.cell(0, "rnk").unwrap(), Value::Int(2));
}

#[test]
fn backends_and_policies_compose() {
    let r = weather();
    for backend in [Backend::Auto, Backend::Bat, Backend::Dense] {
        for sort in [SortPolicy::Optimized, SortPolicy::Always] {
            let ctx = RmaContext::new(RmaOptions {
                backend,
                sort_policy: sort,
                ..RmaOptions::default()
            });
            let q = ctx.qqr(&r, &["T"]).unwrap();
            assert_eq!(q.len(), 4);
            let sorted = q.sorted_by(&["T"]).unwrap();
            assert_eq!(sorted.cell(0, "T").unwrap(), Value::from("5am"));
        }
    }
}

#[test]
fn generated_data_flows_through_rma() {
    let ctx = RmaContext::default();
    let pubs = rma::data::publications(300, 20, 5);
    let confs: Vec<String> = pubs
        .schema()
        .names()
        .filter(|n| *n != "author")
        .map(str::to_string)
        .collect();
    let mut cols = vec!["author"];
    cols.extend(confs.iter().map(String::as_str));
    let gram = ctx.cpd(&pubs, &["author"], &pubs, &["author"]).unwrap();
    assert_eq!(gram.len(), 20);
    // Gram matrices are PSD: every diagonal entry is non-negative
    let sorted = gram.sorted_by(&["C"]).unwrap();
    for i in 0..sorted.len() {
        let Value::Str(c) = sorted.cell(i, "C").unwrap() else {
            panic!()
        };
        let d = sorted.cell(i, &c).unwrap().as_f64().unwrap();
        assert!(d >= 0.0, "diag({c}) = {d}");
    }
}

#[test]
fn kernel_stats_visible_through_facade() {
    let ctx = RmaContext::with_backend(Backend::Dense);
    ctx.qqr(&weather(), &["T"]).unwrap();
    let stats = ctx.stats();
    assert_eq!(stats.ops_run, 1);
    assert!(stats.copy_in.as_nanos() > 0);
    assert!(stats.transform_share() > 0.0);
}
