//! Robustness: degenerate and adversarial inputs must produce typed errors
//! or well-defined results — never panics. The second half exercises the
//! resource governor end to end: cancellation, deadlines, memory budgets,
//! and contention all surface as members of the typed error matrix.

use rma::core::{QueryGuard, RmaContext, RmaError, RmaOptions};
use rma::relation::RelationBuilder;
use rma::{Frame, PlanError, Relation, Server, Value};
use std::time::Duration;

#[test]
fn empty_relation_inputs() {
    let ctx = RmaContext::default();
    let empty = RelationBuilder::new()
        .column("k", Vec::<i64>::new())
        .column("x", Vec::<f64>::new())
        .build()
        .unwrap();
    // kernels reject empty matrices with a typed error
    for result in [
        ctx.qqr(&empty, &["k"]),
        ctx.inv(&empty, &["k"]),
        ctx.det(&empty, &["k"]),
        ctx.rnk(&empty, &["k"]),
    ] {
        assert!(matches!(result, Err(RmaError::Linalg(_))));
    }
}

#[test]
fn single_row_relation() {
    let ctx = RmaContext::default();
    let one = RelationBuilder::new()
        .name("one")
        .column("k", vec![7i64])
        .column("x", vec![3.0f64])
        .build()
        .unwrap();
    let inv = ctx.inv(&one, &["k"]).unwrap();
    assert_eq!(inv.cell(0, "x").unwrap().as_f64().unwrap(), 1.0 / 3.0);
    let d = ctx.det(&one, &["k"]).unwrap();
    assert_eq!(d.cell(0, "det").unwrap(), Value::Float(3.0));
    let t = ctx.tra(&one, &["k"]).unwrap();
    assert_eq!(t.len(), 1);
    assert!(t.schema().contains("7"));
}

#[test]
fn nan_in_keys_breaks_key_property() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![f64::NAN, f64::NAN])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    // two NaN keys are duplicates under the engine's total order
    assert!(matches!(
        ctx.qqr(&r, &["k"]),
        Err(RmaError::OrderSchemaNotKey(_))
    ));
}

#[test]
fn nan_values_flow_through_application_part() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![1i64, 2])
        .column("x", vec![f64::NAN, 1.0])
        .build()
        .unwrap();
    // element-wise ops propagate NaN without panicking
    let s = RelationBuilder::new()
        .column("j", vec![1i64, 2])
        .column("y", vec![5.0f64, 5.0])
        .build()
        .unwrap();
    let sum = ctx.add(&r, &["k"], &s, &["j"]).unwrap();
    let xs = sum.column("x").unwrap().to_f64_vec().unwrap();
    assert!(xs[0].is_nan());
    assert_eq!(xs[1], 6.0);
}

#[test]
fn unknown_order_attributes_error() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![1i64])
        .column("x", vec![1.0f64])
        .build()
        .unwrap();
    assert!(ctx.qqr(&r, &["nope"]).is_err());
    assert!(ctx.mmu(&r, &["k"], &r, &["nope"]).is_err());
}

#[test]
fn huge_values_do_not_break_origins() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![i64::MAX, i64::MIN])
        .column("x", vec![1e300f64, 1e-300])
        .build()
        .unwrap();
    let q = ctx.vsv(&r, &["k"]).unwrap();
    assert_eq!(q.len(), 2);
    let sorted = q.sorted_by(&["k"]).unwrap();
    assert_eq!(sorted.cell(0, "k").unwrap(), Value::Int(i64::MIN));
}

#[test]
fn mismatched_binary_shapes_error_cleanly() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("k", vec![1i64, 2])
        .column("x", vec![1.0f64, 2.0])
        .column("y", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    let b = RelationBuilder::new()
        .column("j", vec![1i64, 2, 3])
        .column("z", vec![1.0f64, 2.0, 3.0])
        .build()
        .unwrap();
    // add: tuple counts differ
    assert!(matches!(
        ctx.add(&a, &["k"], &b, &["j"]),
        Err(RmaError::TupleCountMismatch { .. })
    ));
    // mmu: inner dimensions differ (2 app cols vs 3 tuples)
    assert!(matches!(
        ctx.mmu(&a, &["k"], &b, &["j"]),
        Err(RmaError::Linalg(_))
    ));
}

fn ints(n: i64) -> Relation {
    RelationBuilder::new()
        .column("x", (0..n).collect::<Vec<i64>>())
        .build()
        .unwrap()
}

#[test]
fn governance_errors_are_typed_and_display_their_payload() {
    // every governor outcome is a first-class member of the error matrix:
    // it formats cleanly and keeps its payload for programmatic handling
    let errs = [
        RmaError::Cancelled,
        RmaError::DeadlineExceeded,
        RmaError::ResourceExhausted {
            needed: 1024,
            budget: 512,
        },
        RmaError::WorkerPanicked {
            message: "boom".to_string(),
        },
        RmaError::WriteContention { retries: 16 },
    ];
    for e in &errs {
        assert!(!e.to_string().is_empty(), "{e:?} has no message");
    }
    let exhausted = &errs[2];
    assert!(exhausted.to_string().contains("1024"), "{exhausted}");
    assert!(exhausted.to_string().contains("512"), "{exhausted}");
    assert!(errs[4].to_string().contains("16"), "{}", errs[4]);
}

#[test]
fn cancelled_guard_kills_a_plan_with_a_typed_error() {
    let ctx = RmaContext::default();
    let guard = QueryGuard::new();
    guard.cancel();
    let _scope = guard.activate();
    let err = Frame::scan(ints(1000)).collect(&ctx).unwrap_err();
    assert!(
        matches!(err, PlanError::Rma(RmaError::Cancelled)),
        "got {err:?}"
    );
}

#[test]
fn context_mem_budget_zero_is_unlimited() {
    // mem_budget = 0 (the default) must never reject anything
    let ctx = RmaContext::new(RmaOptions {
        mem_budget: 0,
        ..Default::default()
    });
    let out = Frame::scan(ints(10_000)).collect(&ctx).unwrap();
    assert_eq!(out.len(), 10_000);
}

#[test]
fn tiny_context_mem_budget_trips_with_the_typed_error() {
    // the budget governs operator *working* memory; a top-k's bounded
    // heaps are its working set, and top-k has no out-of-core fallback,
    // so a heap bigger than the budget must trip the typed error
    let ctx = RmaContext::new(RmaOptions {
        mem_budget: 64, // far below 8 bytes × 5000 heap slots
        ..Default::default()
    });
    let err = Frame::scan(ints(10_000))
        .order_by(&["x"], &[true])
        .limit(5000)
        .collect(&ctx)
        .unwrap_err();
    match err {
        PlanError::Rma(RmaError::ResourceExhausted { needed, budget }) => {
            assert_eq!(budget, 64);
            assert!(needed > 64, "needed {needed} must exceed the budget");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    // a bare scan charges no working memory and passes under the same
    // budget — result materialization is the client's footprint, not the
    // operator's (admission control, not the guard, polices result size)
    assert_eq!(
        Frame::scan(ints(10_000)).collect(&ctx).unwrap().len(),
        10_000
    );
}

#[test]
fn context_deadline_kills_a_query_and_clears() {
    let ctx = RmaContext::new(RmaOptions {
        deadline: Some(Duration::from_nanos(1)),
        ..Default::default()
    });
    let err = Frame::scan(ints(4096))
        .aggregate(&[], vec![rma::relation::AggSpec::sum("x", "s")])
        .collect(&ctx)
        .unwrap_err();
    assert!(
        matches!(err, PlanError::Rma(RmaError::DeadlineExceeded)),
        "got {err:?}"
    );
    // the trip is per-query: an undeadlined context is unaffected
    let ok = RmaContext::default();
    assert_eq!(Frame::scan(ints(64)).collect(&ok).unwrap().len(), 64);
}

#[test]
fn zero_seat_sessions_run_governed_queries() {
    // seats = 0 means "no seat cap" — the degenerate session must still
    // execute, be governable, and recover after a governor kill
    let server = Server::default();
    let session = server.session_with_budget(0);
    session.create_table("t", ints(1000)).unwrap();
    assert_eq!(session.query(Frame::table("t")).unwrap().len(), 1000);
    session.set_mem_budget(16);
    let err = session.query(Frame::table("t")).unwrap_err();
    assert!(
        matches!(err, PlanError::Rma(RmaError::ResourceExhausted { .. })),
        "got {err:?}"
    );
    session.set_mem_budget(0);
    assert_eq!(session.query(Frame::table("t")).unwrap().len(), 1000);
    // a single-seat session (every morsel job inline) behaves the same
    let inline = server.session_with_budget(1);
    assert_eq!(inline.query(Frame::table("t")).unwrap().len(), 1000);
}

#[test]
fn duplicate_origin_names_rejected() {
    let ctx = RmaContext::default();
    // order values that stringify to the same attribute name collide with C
    let r = RelationBuilder::new()
        .column("k", vec!["C", "D"])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    // tra creates a C column; a key value "C" would collide in the schema
    assert!(ctx.tra(&r, &["k"]).is_err());
}
