//! Robustness: degenerate and adversarial inputs must produce typed errors
//! or well-defined results — never panics.

use rma::core::{RmaContext, RmaError};
use rma::relation::RelationBuilder;
use rma::Value;

#[test]
fn empty_relation_inputs() {
    let ctx = RmaContext::default();
    let empty = RelationBuilder::new()
        .column("k", Vec::<i64>::new())
        .column("x", Vec::<f64>::new())
        .build()
        .unwrap();
    // kernels reject empty matrices with a typed error
    for result in [
        ctx.qqr(&empty, &["k"]),
        ctx.inv(&empty, &["k"]),
        ctx.det(&empty, &["k"]),
        ctx.rnk(&empty, &["k"]),
    ] {
        assert!(matches!(result, Err(RmaError::Linalg(_))));
    }
}

#[test]
fn single_row_relation() {
    let ctx = RmaContext::default();
    let one = RelationBuilder::new()
        .name("one")
        .column("k", vec![7i64])
        .column("x", vec![3.0f64])
        .build()
        .unwrap();
    let inv = ctx.inv(&one, &["k"]).unwrap();
    assert_eq!(inv.cell(0, "x").unwrap().as_f64().unwrap(), 1.0 / 3.0);
    let d = ctx.det(&one, &["k"]).unwrap();
    assert_eq!(d.cell(0, "det").unwrap(), Value::Float(3.0));
    let t = ctx.tra(&one, &["k"]).unwrap();
    assert_eq!(t.len(), 1);
    assert!(t.schema().contains("7"));
}

#[test]
fn nan_in_keys_breaks_key_property() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![f64::NAN, f64::NAN])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    // two NaN keys are duplicates under the engine's total order
    assert!(matches!(
        ctx.qqr(&r, &["k"]),
        Err(RmaError::OrderSchemaNotKey(_))
    ));
}

#[test]
fn nan_values_flow_through_application_part() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![1i64, 2])
        .column("x", vec![f64::NAN, 1.0])
        .build()
        .unwrap();
    // element-wise ops propagate NaN without panicking
    let s = RelationBuilder::new()
        .column("j", vec![1i64, 2])
        .column("y", vec![5.0f64, 5.0])
        .build()
        .unwrap();
    let sum = ctx.add(&r, &["k"], &s, &["j"]).unwrap();
    let xs = sum.column("x").unwrap().to_f64_vec().unwrap();
    assert!(xs[0].is_nan());
    assert_eq!(xs[1], 6.0);
}

#[test]
fn unknown_order_attributes_error() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![1i64])
        .column("x", vec![1.0f64])
        .build()
        .unwrap();
    assert!(ctx.qqr(&r, &["nope"]).is_err());
    assert!(ctx.mmu(&r, &["k"], &r, &["nope"]).is_err());
}

#[test]
fn huge_values_do_not_break_origins() {
    let ctx = RmaContext::default();
    let r = RelationBuilder::new()
        .column("k", vec![i64::MAX, i64::MIN])
        .column("x", vec![1e300f64, 1e-300])
        .build()
        .unwrap();
    let q = ctx.vsv(&r, &["k"]).unwrap();
    assert_eq!(q.len(), 2);
    let sorted = q.sorted_by(&["k"]).unwrap();
    assert_eq!(sorted.cell(0, "k").unwrap(), Value::Int(i64::MIN));
}

#[test]
fn mismatched_binary_shapes_error_cleanly() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("k", vec![1i64, 2])
        .column("x", vec![1.0f64, 2.0])
        .column("y", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    let b = RelationBuilder::new()
        .column("j", vec![1i64, 2, 3])
        .column("z", vec![1.0f64, 2.0, 3.0])
        .build()
        .unwrap();
    // add: tuple counts differ
    assert!(matches!(
        ctx.add(&a, &["k"], &b, &["j"]),
        Err(RmaError::TupleCountMismatch { .. })
    ));
    // mmu: inner dimensions differ (2 app cols vs 3 tuples)
    assert!(matches!(
        ctx.mmu(&a, &["k"], &b, &["j"]),
        Err(RmaError::Linalg(_))
    ));
}

#[test]
fn duplicate_origin_names_rejected() {
    let ctx = RmaContext::default();
    // order values that stringify to the same attribute name collide with C
    let r = RelationBuilder::new()
        .column("k", vec!["C", "D"])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    // tra creates a C column; a key value "C" would collide in the schema
    assert!(ctx.tra(&r, &["k"]).is_err());
}
