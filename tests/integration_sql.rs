//! SQL end-to-end integration: DDL + DML + mixed relational/matrix queries
//! against generated datasets.

use rma::sql::Engine;
use rma::Value;

#[test]
fn full_sql_session_over_generated_data() {
    let mut e = Engine::new();
    e.register("trips", rma::data::trips(2_000, 25, 77))
        .unwrap();
    e.register("stations", rma::data::stations(25, 77 ^ 0x5a5a))
        .unwrap();

    // relational: aggregate + join + filter
    let busy = e
        .query(
            "SELECT start_station, COUNT(*) AS n FROM trips \
             GROUP BY start_station ORDER BY n DESC LIMIT 5",
        )
        .unwrap();
    assert_eq!(busy.len(), 5);
    let joined = e
        .query(
            "SELECT name, duration FROM trips JOIN stations ON start_station = code \
             WHERE duration > 400 LIMIT 10",
        )
        .unwrap();
    assert!(joined.schema().contains("name"));

    // matrix over a derived table
    let q = e
        .query(
            "SELECT * FROM QQR((SELECT id, duration, member FROM trips LIMIT 50) s BY id, member)",
        )
        .unwrap();
    assert_eq!(q.len(), 50);
}

#[test]
fn covariance_query_via_sql() {
    let mut e = Engine::new();
    e.execute_script(
        "CREATE TABLE w3 (U VARCHAR, B DOUBLE, H DOUBLE, N DOUBLE);
         INSERT INTO w3 VALUES ('Ann', 0.5, -1.25, -0.25), ('Jan', -0.5, 1.25, 0.25);",
    )
    .unwrap();
    let cov = e
        .query("SELECT C, B, H, N FROM MMU(TRA(w3 BY U) BY C, w3 BY U) ORDER BY C")
        .unwrap();
    assert_eq!(cov.len(), 3);
    assert_eq!(cov.cell(0, "C").unwrap(), Value::from("B"));
    assert_eq!(cov.cell(0, "B").unwrap(), Value::Float(0.5));
    assert_eq!(cov.cell(1, "H").unwrap(), Value::Float(3.125));
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (k INT, x DOUBLE)").unwrap();
    e.execute("INSERT INTO t VALUES (1, 1.0), (1, 2.0)")
        .unwrap();
    // duplicate key in order schema
    assert!(e.query("SELECT * FROM INV(t BY k)").is_err());
    // unknown table, unknown column, bad syntax
    assert!(e.query("SELECT * FROM missing").is_err());
    assert!(e.query("SELECT nope FROM t").is_err());
    assert!(e.query("SELEC * FROM t").is_err());
    // non-square inversion
    e.execute("CREATE TABLE t2 (k INT, x DOUBLE, y DOUBLE)")
        .unwrap();
    e.execute("INSERT INTO t2 VALUES (1, 1.0, 2.0)").unwrap();
    assert!(e.query("SELECT * FROM INV(t2 BY k)").is_err());
}

#[test]
fn optimizer_toggle_preserves_results() {
    let mut e = Engine::new();
    e.register("trips", rma::data::trips(1_000, 10, 5)).unwrap();
    e.register("stations", rma::data::stations(10, 5 ^ 0x5a5a))
        .unwrap();
    let q = "SELECT name, duration FROM trips JOIN stations ON start_station = code \
             WHERE duration > 300 AND lat > 45.5 ORDER BY duration DESC LIMIT 20";
    let with = e.query(q).unwrap();
    e.optimize = false;
    let without = e.query(q).unwrap();
    assert!(with.bag_equals(&without));
}
