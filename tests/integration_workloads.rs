//! Workload-level integration: the evaluation pipelines produce consistent
//! analytics across RMA backends, and the documented performance mechanisms
//! hold (no transform cost on the BAT path, compression monotonicity).

use rma_bench::{run_trip_count, run_trips_ols, trip_count_tables, SystemKind};

#[test]
fn rma_backends_agree_on_ols() {
    let trips = rma::data::trips(5_000, 20, 3);
    let stations = rma::data::stations(20, 3 ^ 0x5a5a);
    let auto = run_trips_ols(SystemKind::RmaAuto, &trips, &stations, 10);
    let bat = run_trips_ols(SystemKind::RmaBat, &trips, &stations, 10);
    let mkl = run_trips_ols(SystemKind::RmaMkl, &trips, &stations, 10);
    assert!((auto.check - bat.check).abs() < 1e-6);
    assert!((auto.check - mkl.check).abs() < 1e-6);
    // BAT path never copies; MKL path always does
    assert_eq!(bat.transform.as_nanos(), 0);
    assert!(mkl.transform.as_nanos() > 0);
}

#[test]
fn compression_reduces_stored_values_monotonically() {
    let mut last = usize::MAX;
    for pct in [0.0, 0.3, 0.6, 0.9] {
        let (a, _) = rma::data::sparse_pair(20_000, 1, pct, 8);
        let col = a.column("l0").unwrap().to_f64_vec().unwrap();
        let stored = rma::storage::Rle::encode(&col).stored_values();
        assert!(stored <= last, "stored values must fall with sparsity");
        last = stored;
    }
}

#[test]
fn trip_count_checksums_stable_across_scales() {
    for riders in [500usize, 2_000] {
        let (y1, y2) = trip_count_tables(riders, 10, 12);
        let a = run_trip_count(SystemKind::RmaBat, &y1, &y2);
        let b = run_trip_count(SystemKind::RmaMkl, &y1, &y2);
        assert!((a.check - b.check).abs() < 1e-6 * a.check.abs());
    }
}
